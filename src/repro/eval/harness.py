"""Experiment harness: scenario construction + train/eval protocols.

The paper's evaluation protocol (Section VI-C) is:

1. build the 6x6 grid with its five flow patterns,
2. train every learning model on **pattern 1 only**,
3. evaluate the frozen policies on all five patterns in drain mode,
   reporting average travel time.

Everything here is parameterised by an :class:`ExperimentScale` so the
same pipeline runs at paper scale (6x6, 2700 s demand, hundreds of
episodes) or at CI scale (small grids, short horizons, few episodes)
while preserving the protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable

from repro.agents.base import AgentSystem
from repro.env.tsc_env import EnvConfig, TrafficSignalEnv
from repro.errors import ConfigError
from repro.faults.config import FaultConfig
from repro.rl.runner import EvaluationResult, TrainingHistory, evaluate, train
from repro.scenarios.flows import flow_pattern
from repro.scenarios.grid import GridScenario, build_grid


@dataclass(frozen=True)
class ExperimentScale:
    """Size/duration knobs for the grid experiments.

    ``paper()`` gives the full published configuration; ``ci()`` gives a
    configuration small enough for test suites and benchmarks.
    """

    rows: int = 6
    cols: int = 6
    peak_rate: float = 500.0
    t_peak: float = 900.0
    light_duration: float = 1800.0
    horizon_ticks: int = 2700
    max_ticks: int = 14400
    train_episodes: int = 200
    eval_episodes: int = 1

    def __post_init__(self) -> None:
        if self.train_episodes < 0 or self.eval_episodes <= 0:
            raise ConfigError("episode counts must be positive")

    @staticmethod
    def paper() -> "ExperimentScale":
        return ExperimentScale()

    @staticmethod
    def ci() -> "ExperimentScale":
        """Small configuration preserving the protocol shape."""
        return ExperimentScale(
            rows=3,
            cols=3,
            peak_rate=500.0,
            t_peak=200.0,
            light_duration=400.0,
            horizon_ticks=600,
            max_ticks=4000,
            train_episodes=8,
            eval_episodes=1,
        )

    def with_episodes(self, train_episodes: int) -> "ExperimentScale":
        return replace(self, train_episodes=train_episodes)


AgentFactory = Callable[[TrafficSignalEnv], AgentSystem]
"""Builds a fresh agent system bound to the given environment."""


class GridExperiment:
    """One grid scenario with train/eval environment construction."""

    def __init__(self, scale: ExperimentScale, seed: int = 0) -> None:
        self.scale = scale
        self.seed = seed
        self.scenario: GridScenario = build_grid(scale.rows, scale.cols)

    def _flows(self, pattern: int):
        return flow_pattern(
            self.scenario,
            pattern,
            peak_rate=self.scale.peak_rate,
            t_peak=self.scale.t_peak,
            light_duration=self.scale.light_duration,
        )

    def train_env(
        self,
        pattern: int,
        faults: FaultConfig | None = None,
        fault_degrade: bool = True,
    ) -> TrafficSignalEnv:
        """Fixed-horizon training environment for one flow pattern."""
        config = EnvConfig(
            horizon_ticks=self.scale.horizon_ticks,
            max_ticks=self.scale.max_ticks,
            drain=False,
            faults=faults,
            fault_degrade=fault_degrade,
        )
        return TrafficSignalEnv(
            self.scenario.network,
            self.scenario.phase_plans,
            self._flows(pattern),
            config,
            seed=self.seed,
        )

    def eval_env(
        self,
        pattern: int,
        faults: FaultConfig | None = None,
        fault_degrade: bool = True,
    ) -> TrafficSignalEnv:
        """Drain-mode evaluation environment for one flow pattern."""
        config = EnvConfig(
            horizon_ticks=self.scale.horizon_ticks,
            max_ticks=self.scale.max_ticks,
            drain=True,
            faults=faults,
            fault_degrade=fault_degrade,
        )
        return TrafficSignalEnv(
            self.scenario.network,
            self.scenario.phase_plans,
            self._flows(pattern),
            config,
            seed=self.seed + 500,
        )

    def train_agent(
        self,
        factory: AgentFactory,
        pattern: int = 1,
        episodes: int | None = None,
    ) -> tuple[AgentSystem, TrainingHistory]:
        """Train a fresh agent on one pattern (paper: pattern 1)."""
        env = self.train_env(pattern)
        agent = factory(env)
        episodes = self.scale.train_episodes if episodes is None else episodes
        history = train(agent, env, episodes=episodes, seed=self.seed)
        return agent, history

    def evaluate_agent(
        self, agent: AgentSystem, pattern: int
    ) -> EvaluationResult:
        """Evaluate a (trained) agent on one pattern in drain mode."""
        env = self.eval_env(pattern)
        return evaluate(
            agent, env, episodes=self.scale.eval_episodes, seed=self.seed + 900
        )


class ScenarioExperiment(GridExperiment):
    """The grid-experiment protocol over one compiled scenario spec.

    Drop-in for :class:`GridExperiment` anywhere the comparison /
    multiseed / robustness pipelines build experiments: ``pattern``
    arguments are accepted and ignored because the scenario defines its
    own demand (and optional incident schedule).  The episode horizon
    comes from the scenario; ``scale`` still supplies episode counts and
    the drain-mode tick ceiling.
    """

    def __init__(self, compiled, scale: ExperimentScale, seed: int = 0) -> None:
        from repro.scenarios.spec import CompiledScenario

        if not isinstance(compiled, CompiledScenario):
            raise ConfigError(
                "ScenarioExperiment needs a CompiledScenario; use "
                "repro.scenarios.resolve_scenario() for specs/paths/zoo refs"
            )
        self.scale = scale
        self.seed = seed
        self.compiled = compiled
        #: Grid helpers when the spec's network kind was ``grid``; None
        #: for edge-list/explicit networks.
        self.scenario = compiled.grid

    def _env(
        self,
        drain: bool,
        faults: FaultConfig | None,
        fault_degrade: bool,
        seed: int,
    ) -> TrafficSignalEnv:
        horizon = self.compiled.horizon_ticks
        config = EnvConfig(
            horizon_ticks=horizon,
            max_ticks=max(self.scale.max_ticks, 2 * horizon),
            drain=drain,
            faults=faults,
            fault_degrade=fault_degrade,
            incidents=self.compiled.incidents,
        )
        return TrafficSignalEnv(
            self.compiled.network,
            self.compiled.phase_plans,
            self.compiled.fresh_flows(),
            config,
            seed=seed,
        )

    def train_env(
        self,
        pattern: int = 1,
        faults: FaultConfig | None = None,
        fault_degrade: bool = True,
    ) -> TrafficSignalEnv:
        return self._env(False, faults, fault_degrade, self.seed)

    def eval_env(
        self,
        pattern: int = 1,
        faults: FaultConfig | None = None,
        fault_degrade: bool = True,
    ) -> TrafficSignalEnv:
        return self._env(True, faults, fault_degrade, self.seed + 500)


def make_experiment(
    scale: ExperimentScale, seed: int = 0, scenario=None
) -> GridExperiment:
    """The experiment the eval pipelines should run.

    ``scenario=None`` gives the paper's :class:`GridExperiment`;
    otherwise ``scenario`` is anything
    :func:`repro.scenarios.resolve_scenario` accepts (a compiled
    scenario, a spec dict, a spec JSON path, or ``"zoo:<name>"``) and
    the result is a :class:`ScenarioExperiment` over it.
    """
    if scenario is None:
        return GridExperiment(scale, seed=seed)
    from repro.scenarios.spec import resolve_scenario

    return ScenarioExperiment(resolve_scenario(scenario), scale, seed=seed)
