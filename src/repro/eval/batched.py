"""Single-process batched multiseed runs over one SoA engine.

``run_multiseed(..., engine="soa")`` used to have exactly two speed
options: serial seeds, or fork-parallel workers (``perf/parallel.py``).
This module adds the third: all B seeds' environments share **one**
:class:`repro.sim.soa.SoAEngine` whose batch axis holds one replica per
seed, and every env advances in lockstep inside a single process.

Equivalence contract: each seed's agent, RNG streams, observations,
rewards, and episode metrics are identical to the serial run — the SoA
engine is lockstep bit-exact with the object engine (see
``tests/sim/test_soa_lockstep.py``) and the per-seed agents never
interact, so batching only changes wall-clock.  Drain-mode evaluation
episodes can end at different ticks per replica; a finished replica's
metrics are captured at its done step and the shared engine simply keeps
stepping its (no longer observed) replica until the slowest one drains.
"""

from __future__ import annotations

import time

import numpy as np

from repro.env.tsc_env import StepResult, TrafficSignalEnv
from repro.errors import ConfigError
from repro.rl.runner import (
    EpisodeLog,
    EvaluationResult,
    TrainingHistory,
)
from repro.sim.soa import SoAEngine


class LockstepEnvGroup:
    """B :class:`TrafficSignalEnv`s over one shared batched SoA engine.

    All member envs must agree on network structure, phase plans, and the
    engine-relevant config fields (``delta_t``, ``yellow_time``,
    ``saturation_rate``, ``startup_lost_time``); what differs per env is
    its demand seed (and agent).  ``reset_all`` builds a fresh engine
    with one replica per env; ``step_all`` applies every env's actions,
    advances the whole batch one ``delta_t``, and finishes each env's
    step exactly as ``TrafficSignalEnv.step`` would.
    """

    def __init__(self, envs: list[TrafficSignalEnv]) -> None:
        if not envs:
            raise ConfigError("LockstepEnvGroup needs at least one env")
        head = envs[0].config
        for env in envs[1:]:
            cfg = env.config
            if (
                cfg.delta_t != head.delta_t
                or cfg.yellow_time != head.yellow_time
                or cfg.saturation_rate != head.saturation_rate
                or cfg.startup_lost_time != head.startup_lost_time
            ):
                raise ConfigError(
                    "lockstep envs must share delta_t/yellow_time/"
                    "saturation_rate/startup_lost_time"
                )
            if set(env.phase_plans) != set(envs[0].phase_plans):
                raise ConfigError("lockstep envs must share phase plans")
        self.envs = envs
        self.engine: SoAEngine | None = None

    def reset_all(self, seeds: list[int]) -> list[dict[str, np.ndarray]]:
        """Start a fresh episode in every env, batched in one engine."""
        if len(seeds) != len(self.envs):
            raise ConfigError("need one seed per env")
        demands = [
            env._fresh_demand(seed) for env, seed in zip(self.envs, seeds)
        ]
        head = self.envs[0]
        self.engine = SoAEngine(
            head.network,
            demands,
            head.phase_plans,
            yellow_time=head.config.yellow_time,
            saturation_rate=head.config.saturation_rate,
            startup_lost_time=head.config.startup_lost_time,
        )
        observations = []
        for b, (env, seed) in enumerate(zip(self.envs, seeds)):
            env._episode_count += 1
            observations.append(env._adopt_sim(self.engine.view(b), seed))
        return observations

    def step_all(
        self, actions: list[dict[str, int] | None]
    ) -> list[StepResult | None]:
        """One lockstep decision interval for the whole group.

        ``actions[b] is None`` marks env ``b`` as already done (drain
        mode): no phases are requested for it and no result is built —
        its replica still advances with the batch, unobserved.
        """
        if self.engine is None:
            raise ConfigError("call reset_all() before step_all()")
        for env, acts in zip(self.envs, actions):
            if acts is not None:
                env._apply_actions(acts)
        self.engine.step(self.envs[0].config.delta_t)
        return [
            env._finish_step() if acts is not None else None
            for env, acts in zip(self.envs, actions)
        ]


def train_lockstep(
    agents: list,
    envs: list[TrafficSignalEnv],
    episodes: int,
    seeds: list[int],
) -> list[TrainingHistory]:
    """Train B independent (agent, env) pairs batched over one engine.

    Mirrors ``rl.runner.train``'s core loop (fixed-horizon episodes,
    per-episode ``end_episode`` updates) for every pair at once; seed
    ``b`` runs episode ``e`` with episode seed ``seeds[b] + e``, exactly
    like the serial runner.
    """
    group = LockstepEnvGroup(envs)
    histories = [TrainingHistory(agent_name=agent.name) for agent in agents]
    for episode in range(episodes):
        started = time.perf_counter()
        observations = group.reset_all([seed + episode for seed in seeds])
        for agent, env in zip(agents, envs):
            agent.begin_episode(env, True)
        wait_samples: list[list[float]] = [[] for _ in envs]
        total_rewards = [0.0] * len(envs)
        done = False
        while not done:
            actions = [
                agent.act(obs, env, True)
                for agent, env, obs in zip(agents, envs, observations)
            ]
            results = group.step_all(actions)
            for b, (agent, env, result) in enumerate(
                zip(agents, envs, results)
            ):
                agent.observe(result, env)
                observations[b] = result.observations
                wait_samples[b].append(result.info["average_wait"])
                total_rewards[b] += float(sum(result.rewards.values()))
            # drain=False: every env shares the horizon, so dones agree.
            done = results[0].done
        duration = time.perf_counter() - started
        for b, (agent, env) in enumerate(zip(agents, envs)):
            stats = agent.end_episode(env, training=True)
            histories[b].episodes.append(
                EpisodeLog(
                    episode=episode,
                    avg_wait=float(np.mean(wait_samples[b]))
                    if wait_samples[b]
                    else 0.0,
                    total_reward=total_rewards[b],
                    duration_s=duration,
                    update_stats=stats,
                )
            )
    return histories


def evaluate_lockstep(
    agents: list,
    envs: list[TrafficSignalEnv],
    episodes: int,
    seeds: list[int],
) -> list[EvaluationResult]:
    """Evaluate B (agent, env) pairs batched; envs may be drain-mode.

    Mirrors ``rl.runner.evaluate`` per pair: greedy policies, one
    travel-time sample per episode, NaN-excluded aggregation.  A replica
    that drains early has its final info captured at its done step and
    then coasts inside the shared engine until the batch finishes.
    """
    group = LockstepEnvGroup(envs)
    B = len(envs)
    travel_times: list[list[float]] = [[] for _ in range(B)]
    waits: list[list[float]] = [[] for _ in range(B)]
    finished = [0] * B
    created = [0] * B
    for episode in range(episodes):
        observations = group.reset_all([seed + episode for seed in seeds])
        for agent, env in zip(agents, envs):
            agent.begin_episode(env, False)
        wait_samples: list[list[float]] = [[] for _ in range(B)]
        infos: list[dict] = [{} for _ in range(B)]
        live = [True] * B
        while any(live):
            actions = [
                agents[b].act(observations[b], envs[b], False)
                if live[b]
                else None
                for b in range(B)
            ]
            results = group.step_all(actions)
            for b in range(B):
                result = results[b]
                if result is None:
                    continue
                observations[b] = result.observations
                wait_samples[b].append(result.info["average_wait"])
                infos[b] = result.info
                if result.done:
                    live[b] = False
        for b in range(B):
            agents[b].end_episode(envs[b], training=False)
            travel_times[b].append(
                infos[b].get("average_travel_time", float("nan"))
            )
            waits[b].append(
                float(np.mean(wait_samples[b])) if wait_samples[b] else 0.0
            )
            finished[b] += infos[b].get("finished_vehicles", 0)
            created[b] += infos[b].get("total_created", 0)
    out = []
    for b in range(B):
        samples = np.asarray(travel_times[b], dtype=np.float64)
        invalid = int(np.count_nonzero(np.isnan(samples)))
        average_tt = (
            float(np.nanmean(samples)) if invalid < len(samples) else float("nan")
        )
        out.append(
            EvaluationResult(
                agent_name=agents[b].name,
                average_travel_time=average_tt,
                average_wait=float(np.mean(waits[b])),
                finished_vehicles=finished[b],
                total_created=created[b],
                episodes=episodes,
                invalid_episodes=invalid,
            )
        )
    return out
