"""Single-process batched multiseed runs over one SoA engine.

``run_multiseed(..., engine="soa")`` used to have exactly two speed
options: serial seeds, or fork-parallel workers (``perf/parallel.py``).
This module adds the third: all B seeds' environments share **one**
:class:`repro.sim.soa.SoAEngine` whose batch axis holds one replica per
seed, and every env advances in lockstep inside a single process.

Equivalence contract: each seed's agent, RNG streams, observations,
rewards, and episode metrics are identical to the serial run — the SoA
engine is lockstep bit-exact with the object engine (see
``tests/sim/test_soa_lockstep.py``) and the per-seed agents never
interact, so batching only changes wall-clock.  Drain-mode evaluation
episodes can end at different ticks per replica; a finished replica's
metrics are captured at its done step and the shared engine simply keeps
stepping its (no longer observed) replica until the slowest one drains.
"""

from __future__ import annotations

import time

import numpy as np

from repro.env.tsc_env import StepResult, TrafficSignalEnv
from repro.errors import ConfigError
from repro.rl.runner import (
    EpisodeLog,
    EvaluationResult,
    TrainingHistory,
)
from repro.sim.soa import SoAEngine


class LockstepEnvGroup:
    """B :class:`TrafficSignalEnv`s over one shared batched SoA engine.

    All member envs must agree on network structure, phase plans, and the
    engine-relevant config fields (``delta_t``, ``yellow_time``,
    ``saturation_rate``, ``startup_lost_time``); what differs per env is
    its demand seed (and agent).  ``reset_all`` builds a fresh engine
    with one replica per env; ``step_all`` applies every env's actions,
    advances the whole batch one ``delta_t``, and finishes each env's
    step exactly as ``TrafficSignalEnv.step`` would.
    """

    def __init__(self, envs: list[TrafficSignalEnv]) -> None:
        if not envs:
            raise ConfigError("LockstepEnvGroup needs at least one env")
        head = envs[0].config
        for env in envs[1:]:
            cfg = env.config
            if (
                cfg.delta_t != head.delta_t
                or cfg.yellow_time != head.yellow_time
                or cfg.saturation_rate != head.saturation_rate
                or cfg.startup_lost_time != head.startup_lost_time
            ):
                raise ConfigError(
                    "lockstep envs must share delta_t/yellow_time/"
                    "saturation_rate/startup_lost_time"
                )
            if set(env.phase_plans) != set(envs[0].phase_plans):
                raise ConfigError("lockstep envs must share phase plans")
        self.envs = envs
        self.engine: SoAEngine | None = None
        #: Vectorized cross-replica step finisher (see
        #: :mod:`repro.eval.batched_obs`); ``None`` means every step runs
        #: the reference per-env ``_finish_step`` loop.
        self.extractor = None

    def reset_all(self, seeds: list[int]) -> list[dict[str, np.ndarray]]:
        """Start a fresh episode in every env, batched in one engine."""
        if len(seeds) != len(self.envs):
            raise ConfigError("need one seed per env")
        demands = [
            env._fresh_demand(seed) for env, seed in zip(self.envs, seeds)
        ]
        head = self.envs[0]
        self.engine = SoAEngine(
            head.network,
            demands,
            head.phase_plans,
            yellow_time=head.config.yellow_time,
            saturation_rate=head.config.saturation_rate,
            startup_lost_time=head.config.startup_lost_time,
        )
        observations = []
        for b, (env, seed) in enumerate(zip(self.envs, seeds)):
            env._episode_count += 1
            observations.append(env._adopt_sim(self.engine.view(b), seed))
        # Detector suites were rebuilt by _adopt_sim, so the extractor is
        # rebuilt too; ineligible configurations (fault-injecting
        # detectors, telemetry, heterogeneous layouts) get None and fall
        # back to the bit-identical per-env path.
        from repro.eval.batched_obs import BatchedStepExtractor

        self.extractor = BatchedStepExtractor.maybe_build(self.envs, self.engine)
        return observations

    def step_all(
        self, actions: list[dict[str, int] | None]
    ) -> list[StepResult | None]:
        """One lockstep decision interval for the whole group.

        ``actions[b] is None`` marks env ``b`` as already done (drain
        mode): no phases are requested for it and no result is built —
        its replica still advances with the batch, unobserved.
        """
        if self.engine is None:
            raise ConfigError("call reset_all() before step_all()")
        for env, acts in zip(self.envs, actions):
            if acts is not None:
                env._apply_actions(acts)
        self.engine.step(self.envs[0].config.delta_t)
        if self.extractor is not None:
            return self.extractor.finish_all(
                [acts is not None for acts in actions]
            )
        return [
            env._finish_step() if acts is not None else None
            for env, acts in zip(self.envs, actions)
        ]


def train_lockstep(
    agents: list,
    envs: list[TrafficSignalEnv],
    episodes: int,
    seeds: list[int],
    batched_policy: bool = False,
    shared_across_replicas: bool = False,
) -> list[TrainingHistory]:
    """Train B (agent, env) pairs batched over one engine.

    Mirrors ``rl.runner.train``'s core loop (fixed-horizon episodes,
    per-episode ``end_episode`` updates) for every pair at once; seed
    ``b`` runs episode ``e`` with episode seed ``seeds[b] + e``, exactly
    like the serial runner.

    ``batched_policy=True`` drives the group through
    :class:`repro.agents.pairuplight.batched.BatchedPolicyGroup`
    (PairUpLight systems only; raises :class:`ConfigError` otherwise).
    The default independent mode is bit-exact with the per-agent path;
    ``shared_across_replicas=True`` instead trains the first system's
    parameters on all B seeds with one ``(B·M)`` forward per tick and one
    combined PPO update.

    Timing: ``duration_s`` is the per-seed share of the group's
    wall-clock (group time / B, the amortized per-seed cost comparable
    against serial histories); the whole-group wall-clock is recorded
    once per seed in ``group_duration_s``.
    """
    group = LockstepEnvGroup(envs)
    policy = None
    if batched_policy:
        from repro.agents.pairuplight.batched import BatchedPolicyGroup

        policy = BatchedPolicyGroup(
            agents, group, shared_across_replicas=shared_across_replicas
        )
    histories = [TrainingHistory(agent_name=agent.name) for agent in agents]
    for episode in range(episodes):
        started = time.perf_counter()
        observations = group.reset_all([seed + episode for seed in seeds])
        if policy is not None:
            policy.begin_episode_all(True)
        else:
            for agent, env in zip(agents, envs):
                agent.begin_episode(env, True)
        wait_samples: list[list[float]] = [[] for _ in envs]
        total_rewards = [0.0] * len(envs)
        done = False
        while not done:
            if policy is not None:
                actions = policy.act_all(observations, True)
            else:
                actions = [
                    agent.act(obs, env, True)
                    for agent, env, obs in zip(agents, envs, observations)
                ]
            results = group.step_all(actions)
            if policy is not None:
                policy.observe_all(results)
            for b, result in enumerate(results):
                if policy is None:
                    agents[b].observe(result, envs[b])
                observations[b] = result.observations
                wait_samples[b].append(result.info["average_wait"])
                total_rewards[b] += float(sum(result.rewards.values()))
            # drain=False: every env shares the horizon, so dones agree.
            done = results[0].done
        duration = time.perf_counter() - started
        if policy is not None:
            stats_list = policy.end_episode_all(True)
        else:
            stats_list = [
                agent.end_episode(env, training=True)
                for agent, env in zip(agents, envs)
            ]
        for b in range(len(envs)):
            histories[b].episodes.append(
                EpisodeLog(
                    episode=episode,
                    avg_wait=float(np.mean(wait_samples[b]))
                    if wait_samples[b]
                    else 0.0,
                    total_reward=total_rewards[b],
                    duration_s=duration / len(envs),
                    update_stats=stats_list[b],
                    group_duration_s=duration,
                )
            )
    return histories


def evaluate_lockstep(
    agents: list,
    envs: list[TrafficSignalEnv],
    episodes: int,
    seeds: list[int],
    batched_policy: bool = False,
    shared_across_replicas: bool = False,
) -> list[EvaluationResult]:
    """Evaluate B (agent, env) pairs batched; envs may be drain-mode.

    Mirrors ``rl.runner.evaluate`` per pair: greedy policies, one
    travel-time sample per episode, NaN-excluded aggregation.  A replica
    that drains early has its final info captured at its done step and
    then coasts inside the shared engine until the batch finishes.

    ``batched_policy``/``shared_across_replicas`` select the same policy
    drivers as :func:`train_lockstep`.
    """
    group = LockstepEnvGroup(envs)
    policy = None
    if batched_policy:
        from repro.agents.pairuplight.batched import BatchedPolicyGroup

        policy = BatchedPolicyGroup(
            agents, group, shared_across_replicas=shared_across_replicas
        )
    B = len(envs)
    travel_times: list[list[float]] = [[] for _ in range(B)]
    waits: list[list[float]] = [[] for _ in range(B)]
    finished = [0] * B
    created = [0] * B
    for episode in range(episodes):
        observations = group.reset_all([seed + episode for seed in seeds])
        if policy is not None:
            policy.begin_episode_all(False)
        else:
            for agent, env in zip(agents, envs):
                agent.begin_episode(env, False)
        wait_samples: list[list[float]] = [[] for _ in range(B)]
        infos: list[dict] = [{} for _ in range(B)]
        live = [True] * B
        while any(live):
            if policy is not None:
                actions = policy.act_all(observations, False, live=live)
            else:
                actions = [
                    agents[b].act(observations[b], envs[b], False)
                    if live[b]
                    else None
                    for b in range(B)
                ]
            results = group.step_all(actions)
            for b in range(B):
                result = results[b]
                if result is None:
                    continue
                observations[b] = result.observations
                wait_samples[b].append(result.info["average_wait"])
                infos[b] = result.info
                if result.done:
                    live[b] = False
        if policy is not None:
            policy.end_episode_all(False)
        else:
            for b in range(B):
                agents[b].end_episode(envs[b], training=False)
        for b in range(B):
            travel_times[b].append(
                infos[b].get("average_travel_time", float("nan"))
            )
            waits[b].append(
                float(np.mean(wait_samples[b])) if wait_samples[b] else 0.0
            )
            finished[b] += infos[b].get("finished_vehicles", 0)
            created[b] += infos[b].get("total_created", 0)
    out = []
    for b in range(B):
        samples = np.asarray(travel_times[b], dtype=np.float64)
        invalid = int(np.count_nonzero(np.isnan(samples)))
        average_tt = (
            float(np.nanmean(samples)) if invalid < len(samples) else float("nan")
        )
        out.append(
            EvaluationResult(
                agent_name=agents[b].name,
                average_travel_time=average_tt,
                average_wait=float(np.mean(waits[b])),
                finished_vehicles=finished[b],
                total_created=created[b],
                episodes=episodes,
                invalid_episodes=invalid,
            )
        )
    return out
