"""Vectorized cross-replica observation/reward extraction.

``LockstepEnvGroup.step_all`` used to finish every member env with the
per-env ``TrafficSignalEnv._finish_step`` loop: each replica walked the
whole network in Python (detector bulk pass, observation build, Eq. 6
rewards, network-average wait) through its ``SoAReplicaView``.  Profiling
a B=8 training rollout put ~75% of wall-clock in exactly that loop — the
batched engine step itself was ~5%.

This module replaces the loop with one vectorized pass over the SoA
engine's flat arrays for all B replicas at once.  The bit-exactness
strategy piggybacks on the detector bulk cache: ``DetectorSuite``
memoizes its per-tick bulk arrays (``_bulk_app`` … ``_bulk_ic``) keyed by
``sim.time``, and every observed quantity is a lookup into them.  The
extractor computes those arrays for all replicas with the *same*
element-for-element operations as ``DetectorSuite._bulk_compute`` (same
index arrays, same ``np.add.at`` accumulation order per replica, same
int/float conversions) and injects each replica's slice into its env's
detector.  Every downstream consumer — observation builder, partner
selection, critic pressures — then reads identical values through the
unchanged per-env API.

Eligibility is conservative: any env with a subclassed detector suite
(fault injection), attached telemetry, or a non-uniform observation
layout falls back to the reference per-env ``_finish_step`` path, which
remains the oracle for the equivalence tests.
"""

from __future__ import annotations

from itertools import chain

import numpy as np

from repro.env.observation import FEATURES_PER_APPROACH
from repro.env.tsc_env import StepResult, TrafficSignalEnv
from repro.sim.detectors import DetectorSuite
from repro.sim.metrics import average_travel_time
from repro.sim.soa import SoAEngine


class BatchedStepExtractor:
    """Finishes all replicas' env steps in one vectorized pass.

    Built fresh per episode (detector suites are rebuilt on reset); all
    static index arrays are borrowed from the first env's detectors,
    which is sound because every replica view shares the engine's single
    network object, so every env's ``DetectorSuite`` builds identical
    indexes.
    """

    def __init__(self, envs: list[TrafficSignalEnv], engine: SoAEngine) -> None:
        self.envs = envs
        self.engine = engine
        det = envs[0].detectors
        assert type(det) is DetectorSuite
        self.det0 = det
        self.coverage = det.coverage
        self.visible_slots = det._visible_slots
        self.reward_scale = envs[0].config.reward_scale
        self.B = engine.batch
        self.NL = engine.NL
        self.LK = engine.LK
        self.NM = len(det._mv_index)
        self.NN = len(det._node_order)
        self.agent_ids = list(envs[0].agent_ids)
        self.M = len(self.agent_ids)

        self._link_lane_start = np.asarray(engine._link_lane_start, dtype=np.intp)
        self._link_arange = np.arange(self.LK, dtype=np.intp)
        self._speed = np.asarray(engine._speed, dtype=np.float64)
        self._length = np.asarray(engine._length, dtype=np.float64)
        # Per-lane spillback threshold, in detector lane order (== engine
        # lane order: both are link-major over network.links).
        thr = []
        for link_id in det._link_order:
            geom = det._link_geom[link_id]
            thr.extend([geom[3]] * len(geom[2]))
        self._thr_lane = np.asarray(thr, dtype=np.float64)

        # Observation slots: per agent, the link index feeding each
        # compass slot (-1 = empty slot).  Uniform width is an
        # eligibility precondition.
        builder = envs[0].obs_builder
        self.num_slots = len(builder._slots[self.agent_ids[0]])
        slot_idx = np.zeros((self.M, self.num_slots), dtype=np.intp)
        slot_mask = np.zeros((self.M, self.num_slots), dtype=bool)
        for m, node_id in enumerate(self.agent_ids):
            for s, link_id in enumerate(builder._slots[node_id]):
                if link_id is not None:
                    slot_idx[m, s] = det._link_index[link_id]
                    slot_mask[m, s] = True
        self._slot_idx = slot_idx
        self._slot_mask = slot_mask
        from repro.sim.network import VEHICLE_SPACE_M

        self.norm_p = max(1.0, self.coverage / VEHICLE_SPACE_M)
        self.wait_norm = builder.wait_normaliser

        # Reward (Eq. 6) lane groups: the incoming lanes of each agent
        # node, flattened in the reference iteration order.
        network = det.sim.network
        agent_lanes: list[int] = []
        starts: list[int] = []
        lane_index = {l: i for i, l in enumerate(det._lane_order)}
        for node_id in self.agent_ids:
            starts.append(len(agent_lanes))
            for link_id in network.nodes[node_id].incoming:
                for lane in network.links[link_id].lanes:
                    agent_lanes.append(lane_index[lane.lane_id])
        self._agent_lanes = np.asarray(agent_lanes, dtype=np.intp)
        self._agent_lane_start = np.asarray(starts, dtype=np.intp)

        # Latest per-tick products, exposed for the batched policy path.
        self.pressures: np.ndarray | None = None  # (B, M, S)
        self.observations: np.ndarray | None = None  # (B, M, 2S)

    # ------------------------------------------------------------------
    @staticmethod
    def maybe_build(
        envs: list[TrafficSignalEnv], engine: SoAEngine
    ) -> "BatchedStepExtractor | None":
        """Build an extractor iff the fast path is exactly equivalent."""
        head = envs[0]
        slots0 = head.obs_builder._slots
        widths = {len(s) for s in slots0.values()}
        if len(widths) != 1:
            return None
        for env in envs:
            if type(env.detectors) is not DetectorSuite:
                return None  # fault-injecting suites bypass bulk mode
            if env._telemetry is not None:
                return None  # telemetry counts env.steps per _finish_step
            if env.agent_ids != head.agent_ids:
                return None
            if (
                env.config.coverage != head.config.coverage
                or env.config.reward_scale != head.config.reward_scale
            ):
                return None
            if env.obs_builder._slots != slots0:
                return None
        return BatchedStepExtractor(envs, engine)

    # ------------------------------------------------------------------
    def finish_all(self, live: list[bool]) -> list[StepResult | None]:
        """Equivalent of ``env._finish_step()`` for every live replica."""
        engine = self.engine
        B, NL, LK = self.B, self.NL, self.LK
        now = engine.time

        qlen = np.fromiter(
            map(len, engine._queues), dtype=np.int64, count=B * NL
        ).reshape(B, NL)
        lane_wait = np.where(
            engine._head_row != engine.EMPTY_ROW, now - engine._head_anchor, 0
        ).reshape(B, NL)
        link_wait = np.maximum.reduceat(lane_wait, self._link_lane_start, axis=1)

        lp_mat = np.empty((B, LK), dtype=np.float64)
        for b in range(B):
            if live[b]:
                lp_mat[b] = self._bulk_replica(b, qlen[b], now)

        obs, press = self._build_observations(lp_mat, link_wait)
        self.pressures = press
        self.observations = obs

        halts = np.add.reduceat(
            qlen[:, self._agent_lanes], self._agent_lane_start, axis=1
        )
        maxw = np.maximum.reduceat(
            lane_wait[:, self._agent_lanes], self._agent_lane_start, axis=1
        )
        rewards_mat = -self.reward_scale * (halts + maxw)

        results: list[StepResult | None] = []
        agent_ids = self.agent_ids
        for b, env in enumerate(self.envs):
            if not live[b]:
                results.append(None)
                continue
            # Pre-populate the per-tick pressure cache so the critic's
            # neighbourhood queries are dictionary lookups.
            env._pressure_cache_time = now
            env._pressure_cache = {
                node_id: press[b, m] for m, node_id in enumerate(agent_ids)
            }
            observations = {
                node_id: obs[b, m] for m, node_id in enumerate(agent_ids)
            }
            rewards = {
                node_id: float(rewards_mat[b, m])
                for m, node_id in enumerate(agent_ids)
            }
            done = env._is_done()
            info = {
                "time": now,
                "vehicles_in_network": engine._inserted_cnt[b]
                - engine._finished_cnt[b],
                "pending_insertions": engine._arr_ptr[b]
                - engine._inserted_cnt[b],
                "average_wait": float(np.mean(maxw[b])),
            }
            if done:
                info["average_travel_time"] = average_travel_time(env.sim)
                info["finished_vehicles"] = len(env.sim.finished_vehicles)
                info["total_created"] = env.sim.total_created
            results.append(StepResult(observations, rewards, done, info))
        return results

    # ------------------------------------------------------------------
    def _bulk_replica(self, b: int, qlen_b: np.ndarray, now: int) -> np.ndarray:
        """Mirror of ``DetectorSuite._bulk_compute`` for replica ``b``.

        Replaces the Python per-link/per-vehicle scans with numpy kernels
        while preserving every accumulation order and scalar conversion,
        then injects the arrays into the env's detector cache.  Returns
        the link-pressure row (reused by the observation assembly).
        """
        det = self.envs[b].detectors
        engine = self.engine
        LK = self.LK
        coverage = self.coverage

        queue_obs = np.minimum(qlen_b, self.visible_slots)

        running_b = engine._running[b]
        counts = np.fromiter(map(len, running_b), dtype=np.int64, count=LK)
        total = int(counts.sum())
        if total:
            vids = np.fromiter(
                chain.from_iterable(running_b), dtype=np.int64, count=total
            )
            run_start = engine._v_run_start[b]
            starts = np.fromiter(
                map(run_start.__getitem__, vids.tolist()),
                dtype=np.int64,
                count=total,
            )
            link_rep = np.repeat(self._link_arange, counts)
            travelled = self._speed[link_rep] * (now - starts)
            # max(0, length - travelled) <= coverage  <=>  the plain
            # comparison, because coverage > 0.
            app_mask = (self._length[link_rep] - travelled) <= coverage
            near_mask = travelled <= coverage
            app = np.bincount(
                link_rep[app_mask], minlength=LK
            ).astype(np.int64)
            down = np.bincount(
                link_rep[near_mask], minlength=LK
            ).astype(np.int64)
        else:
            app = np.zeros(LK, dtype=np.int64)
            down = np.zeros(LK, dtype=np.int64)

        overflow = qlen_b - self._thr_lane
        spill = np.where(overflow > 0, overflow.astype(np.int64), 0)
        down = down + np.add.reduceat(spill, self._link_lane_start)

        onl = np.add.reduceat(queue_obs, self._link_lane_start) + app

        incoming = np.zeros(self.NM)
        np.add.at(
            incoming, det._in_mv, queue_obs[det._in_lane] / det._in_sharers
        )
        incoming += (app[det._mv_in_link] / det._mv_in_count) * det._mv_in_scale
        mp = incoming - down[det._mv_out_link] / det._mv_out_lanes
        lp = np.zeros(LK)
        np.add.at(lp, det._lp_link, mp[det._lp_mv])
        ip = np.zeros(self.NN)
        np.add.at(ip, det._ip_node, np.abs(mp[det._ip_mv]))
        ic = np.zeros(self.NN, dtype=np.int64)
        np.add.at(ic, det._ic_node, onl[det._ic_link])

        det._bulk_app = app
        det._bulk_down = down
        det._bulk_onl = onl
        det._bulk_mp = mp
        det._bulk_lp = lp
        det._bulk_ip = ip
        det._bulk_ic = ic
        det._bulk_time = now
        return lp

    # ------------------------------------------------------------------
    def _build_observations(
        self, lp_mat: np.ndarray, link_wait: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Eq. 5 observations and per-slot pressures for every replica.

        Freshly allocated each tick: the rollout buffer stores these
        arrays by reference.
        """
        idx = self._slot_idx
        mask = self._slot_mask
        press = np.where(mask, lp_mat[:, idx] / self.norm_p, 0.0)
        waitf = np.where(mask, link_wait[:, idx] / self.wait_norm, 0.0)
        obs = np.empty(
            (self.B, self.M, self.num_slots * FEATURES_PER_APPROACH),
            dtype=np.float64,
        )
        obs[..., 0::2] = press
        obs[..., 1::2] = waitf
        return obs, press
