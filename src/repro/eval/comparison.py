"""Table II / Table III pipelines: cross-pattern model comparison.

:func:`run_table2` trains every model on flow pattern 1 and evaluates on
patterns 1-5; :func:`run_table3` trains *and* evaluates on the light
uniform pattern 5.  Both return :class:`ComparisonTable` objects that
print in the paper's row/column layout.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.agents.base import AgentSystem
from repro.eval.harness import AgentFactory, ExperimentScale, GridExperiment
from repro.rl.runner import TrainingHistory

ALL_PATTERNS = (1, 2, 3, 4, 5)


@dataclass
class ComparisonTable:
    """Average travel time per (model, pattern) — the paper's Table II."""

    patterns: tuple[int, ...]
    rows: dict[str, dict[int, float]] = field(default_factory=dict)
    histories: dict[str, TrainingHistory] = field(default_factory=dict)

    def add(self, model: str, pattern: int, travel_time: float) -> None:
        self.rows.setdefault(model, {})[pattern] = travel_time

    def value(self, model: str, pattern: int) -> float:
        return self.rows[model][pattern]

    def winner(self, pattern: int) -> str:
        """Model with the lowest average travel time for a pattern."""
        return min(self.rows, key=lambda model: self.rows[model].get(pattern, float("inf")))

    def formatted(self, title: str = "Average travel time (seconds)") -> str:
        header = ["Model".ljust(18)] + [f"Pattern {p}".rjust(11) for p in self.patterns]
        lines = [title, " | ".join(header)]
        lines.append("-" * len(lines[1]))
        for model, cells in self.rows.items():
            row = [model.ljust(18)]
            for pattern in self.patterns:
                value = cells.get(pattern)
                row.append("—".rjust(11) if value is None else f"{value:11.2f}")
            lines.append(" | ".join(row))
        return "\n".join(lines)


def default_model_factories(seed: int = 0) -> dict[str, AgentFactory]:
    """The paper's five models (Section VI-B), keyed by table row name."""
    from repro.agents.colight import CoLightSystem
    from repro.agents.fixed_time import FixedTimeSystem
    from repro.agents.ma2c import MA2CSystem
    from repro.agents.pairuplight import PairUpLightSystem
    from repro.agents.single_agent import SingleAgentSystem

    return {
        "Fixedtime": lambda env: FixedTimeSystem(env),
        "SingleAgent": lambda env: SingleAgentSystem(env, seed=seed),
        "MA2C": lambda env: MA2CSystem(env, seed=seed),
        "CoLight": lambda env: CoLightSystem(env, seed=seed),
        "PairUpLight": lambda env: PairUpLightSystem(env, seed=seed),
    }


def run_table2(
    scale: ExperimentScale,
    factories: dict[str, AgentFactory] | None = None,
    seed: int = 0,
    train_pattern: int = 1,
    eval_patterns: tuple[int, ...] = ALL_PATTERNS,
) -> ComparisonTable:
    """Train each model on ``train_pattern``, evaluate across patterns."""
    factories = factories or default_model_factories(seed)
    experiment = GridExperiment(scale, seed=seed)
    table = ComparisonTable(patterns=eval_patterns)
    for name, factory in factories.items():
        agent, history = experiment.train_agent(factory, pattern=train_pattern)
        table.histories[name] = history
        for pattern in eval_patterns:
            result = experiment.evaluate_agent(agent, pattern)
            table.add(name, pattern, result.average_travel_time)
    return table


def run_table3(
    scale: ExperimentScale,
    factories: dict[str, AgentFactory] | None = None,
    seed: int = 0,
) -> ComparisonTable:
    """Light-traffic study: train and evaluate on pattern 5 only."""
    factories = factories or default_model_factories(seed)
    experiment = GridExperiment(scale, seed=seed)
    table = ComparisonTable(patterns=(5,))
    for name, factory in factories.items():
        agent, history = experiment.train_agent(factory, pattern=5)
        table.histories[name] = history
        result = experiment.evaluate_agent(agent, 5)
        table.add(name, 5, result.average_travel_time)
    return table


def train_agent_on_pattern(
    scale: ExperimentScale,
    factory: AgentFactory,
    pattern: int = 1,
    seed: int = 0,
    episodes: int | None = None,
) -> tuple[AgentSystem, TrainingHistory]:
    """Convenience wrapper used by the figure benchmarks."""
    experiment = GridExperiment(scale, seed=seed)
    return experiment.train_agent(factory, pattern=pattern, episodes=episodes)
