"""Table II / Table III pipelines: cross-pattern model comparison.

:func:`run_table2` trains every model on flow pattern 1 and evaluates on
patterns 1-5; :func:`run_table3` trains *and* evaluates on the light
uniform pattern 5.  Both return :class:`ComparisonTable` objects that
print in the paper's row/column layout.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.agents.base import AgentSystem
from repro.errors import ConfigError
from repro.eval.harness import (
    AgentFactory,
    ExperimentScale,
    GridExperiment,
    make_experiment,
)
from repro.rl.runner import TrainingHistory

ALL_PATTERNS = (1, 2, 3, 4, 5)


@dataclass
class ComparisonTable:
    """Average travel time per (model, column) — the paper's Table II.

    Columns are flow-pattern numbers for the paper tables and scenario
    names for zoo/spec generalisation tables; both can coexist.
    """

    patterns: tuple[int | str, ...]
    rows: dict[str, dict[int | str, float]] = field(default_factory=dict)
    histories: dict[str, TrainingHistory] = field(default_factory=dict)

    def add(self, model: str, pattern: int | str, travel_time: float) -> None:
        self.rows.setdefault(model, {})[pattern] = travel_time

    def value(self, model: str, pattern: int | str) -> float:
        return self.rows[model][pattern]

    def winner(self, pattern: int | str) -> str:
        """Model with the lowest average travel time for a column."""
        return min(self.rows, key=lambda model: self.rows[model].get(pattern, float("inf")))

    @staticmethod
    def _column_label(pattern: int | str) -> str:
        return pattern if isinstance(pattern, str) else f"Pattern {pattern}"

    def formatted(self, title: str = "Average travel time (seconds)") -> str:
        width = max(11, max((len(self._column_label(p)) for p in self.patterns), default=11))
        header = ["Model".ljust(18)] + [
            self._column_label(p).rjust(width) for p in self.patterns
        ]
        lines = [title, " | ".join(header)]
        lines.append("-" * len(lines[1]))
        for model, cells in self.rows.items():
            row = [model.ljust(18)]
            for pattern in self.patterns:
                value = cells.get(pattern)
                row.append("—".rjust(width) if value is None else f"{value:{width}.2f}")
            lines.append(" | ".join(row))
        return "\n".join(lines)


def default_model_factories(seed: int = 0) -> dict[str, AgentFactory]:
    """The paper's five models (Section VI-B), keyed by table row name."""
    from repro.agents.colight import CoLightSystem
    from repro.agents.fixed_time import FixedTimeSystem
    from repro.agents.ma2c import MA2CSystem
    from repro.agents.pairuplight import PairUpLightSystem
    from repro.agents.single_agent import SingleAgentSystem

    return {
        "Fixedtime": lambda env: FixedTimeSystem(env),
        "SingleAgent": lambda env: SingleAgentSystem(env, seed=seed),
        "MA2C": lambda env: MA2CSystem(env, seed=seed),
        "CoLight": lambda env: CoLightSystem(env, seed=seed),
        "PairUpLight": lambda env: PairUpLightSystem(env, seed=seed),
    }


def run_table2(
    scale: ExperimentScale,
    factories: dict[str, AgentFactory] | None = None,
    seed: int = 0,
    train_pattern: int = 1,
    eval_patterns: tuple[int, ...] = ALL_PATTERNS,
    scenario=None,
) -> ComparisonTable:
    """Train each model on ``train_pattern``, evaluate across patterns.

    With ``scenario`` set (anything
    :func:`repro.scenarios.resolve_scenario` accepts — a spec path,
    ``"zoo:<name>"``, a spec dict or a compiled scenario), the pipeline
    trains and evaluates every model on that scenario instead of the
    paper's patterns; the table then has a single column named after the
    scenario.
    """
    factories = factories or default_model_factories(seed)
    experiment = make_experiment(scale, seed=seed, scenario=scenario)
    if scenario is not None:
        eval_patterns = (experiment.compiled.name,)
    table = ComparisonTable(patterns=eval_patterns)
    for name, factory in factories.items():
        agent, history = experiment.train_agent(factory, pattern=train_pattern)
        table.histories[name] = history
        for pattern in eval_patterns:
            result = experiment.evaluate_agent(agent, pattern)
            table.add(name, pattern, result.average_travel_time)
    return table


def run_scenario_table(
    scale: ExperimentScale,
    scenarios: dict[str, "object"],
    factories: dict[str, AgentFactory] | None = None,
    seed: int = 0,
    train_on: str | None = None,
) -> ComparisonTable:
    """Table-II layout across a set of scenarios instead of patterns.

    ``scenarios`` maps column names to anything
    :func:`repro.scenarios.resolve_scenario` accepts.  Each model trains
    once on ``train_on`` (default: the first scenario) and its frozen
    policy is evaluated on every column — the CoordLight-style
    generalisation protocol.  All scenarios must share the training
    network's agent layout (same intersections, same phase counts), e.g.
    zoo entries on the same grid size; a mismatch raises
    :class:`~repro.errors.ConfigError` naming the offending scenario.
    """
    from repro.scenarios.spec import resolve_scenario

    if not scenarios:
        raise ConfigError("need at least one scenario column")
    factories = factories or default_model_factories(seed)
    experiments = {
        name: make_experiment(scale, seed=seed, scenario=resolve_scenario(source))
        for name, source in scenarios.items()
    }
    train_on = train_on if train_on is not None else next(iter(experiments))
    if train_on not in experiments:
        raise ConfigError(f"train_on {train_on!r} is not a scenario column")
    reference = experiments[train_on]
    ref_env = reference.train_env()
    for name, experiment in experiments.items():
        env = experiment.train_env()
        if (
            env.agent_ids != ref_env.agent_ids
            or any(
                env.action_spaces[a].n != ref_env.action_spaces[a].n
                or env.observation_spaces[a].dim != ref_env.observation_spaces[a].dim
                for a in env.agent_ids
            )
        ):
            raise ConfigError(
                f"scenario {name!r} has a different agent layout than "
                f"{train_on!r}; cross-scenario evaluation needs matching "
                "networks (same grid size / topology)"
            )
    table = ComparisonTable(patterns=tuple(experiments))
    for model_name, factory in factories.items():
        agent, history = reference.train_agent(factory)
        table.histories[model_name] = history
        for column, experiment in experiments.items():
            result = experiment.evaluate_agent(agent, 1)
            table.add(model_name, column, result.average_travel_time)
    return table


def run_table3(
    scale: ExperimentScale,
    factories: dict[str, AgentFactory] | None = None,
    seed: int = 0,
) -> ComparisonTable:
    """Light-traffic study: train and evaluate on pattern 5 only."""
    factories = factories or default_model_factories(seed)
    experiment = GridExperiment(scale, seed=seed)
    table = ComparisonTable(patterns=(5,))
    for name, factory in factories.items():
        agent, history = experiment.train_agent(factory, pattern=5)
        table.histories[name] = history
        result = experiment.evaluate_agent(agent, 5)
        table.add(name, 5, result.average_travel_time)
    return table


def train_agent_on_pattern(
    scale: ExperimentScale,
    factory: AgentFactory,
    pattern: int = 1,
    seed: int = 0,
    episodes: int | None = None,
) -> tuple[AgentSystem, TrainingHistory]:
    """Convenience wrapper used by the figure benchmarks."""
    experiment = GridExperiment(scale, seed=seed)
    return experiment.train_agent(factory, pattern=pattern, episodes=episodes)
