"""Experiment pipelines reproducing the paper's tables and figures."""

from repro.eval.comm_overhead import (
    OverheadRow,
    formatted_overhead_table,
    overhead_row,
    overhead_table,
)
from repro.eval.comparison import (
    ALL_PATTERNS,
    ComparisonTable,
    default_model_factories,
    run_table2,
    run_table3,
    train_agent_on_pattern,
)
from repro.eval.harness import (
    AgentFactory,
    ExperimentScale,
    GridExperiment,
)
from repro.eval.message_analysis import (
    MessageLog,
    MessageReport,
    analyse,
    probe_messages,
)
from repro.eval.multiseed import MultiSeedResult, SeedRun, run_multiseed
from repro.eval.robustness import (
    DEFAULT_FAULT_RATES,
    DegradationCurve,
    RobustnessPoint,
    evaluate_under_faults,
    formatted_degradation_table,
    run_degradation_comparison,
    run_robustness_sweep,
)
from repro.eval.reporting import (
    ascii_chart,
    export_comparison_csv,
    export_history_csv,
    sparkline,
    training_report,
)

__all__ = [
    "ALL_PATTERNS",
    "AgentFactory",
    "ComparisonTable",
    "DEFAULT_FAULT_RATES",
    "DegradationCurve",
    "ExperimentScale",
    "GridExperiment",
    "MessageLog",
    "MessageReport",
    "MultiSeedResult",
    "OverheadRow",
    "RobustnessPoint",
    "SeedRun",
    "analyse",
    "ascii_chart",
    "default_model_factories",
    "evaluate_under_faults",
    "export_comparison_csv",
    "export_history_csv",
    "formatted_degradation_table",
    "formatted_overhead_table",
    "overhead_row",
    "overhead_table",
    "probe_messages",
    "run_degradation_comparison",
    "run_multiseed",
    "run_robustness_sweep",
    "run_table2",
    "run_table3",
    "sparkline",
    "train_agent_on_pattern",
    "training_report",
]
