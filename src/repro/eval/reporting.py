"""Result reporting: CSV export and terminal (ASCII) charts.

The paper's figures are line charts of average waiting time per episode.
This module renders those series directly in the terminal and exports
them as CSV so they can be re-plotted with any external tool.
"""

from __future__ import annotations

import csv
import os
from typing import Mapping, Sequence

import numpy as np

from repro.errors import ConfigError
from repro.rl.runner import TrainingHistory

#: Characters used for vertical resolution inside one text row.
_BLOCKS = " .:-=+*#%@"


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """One-line character chart of a series (resampled to ``width``)."""
    data = np.asarray(list(values), dtype=np.float64)
    if data.size == 0:
        raise ConfigError("cannot chart an empty series")
    if data.size > width:
        # Average-pool down to the target width.
        edges = np.linspace(0, data.size, width + 1).astype(int)
        data = np.array([data[a:b].mean() for a, b in zip(edges[:-1], edges[1:])])
    lo, hi = float(data.min()), float(data.max())
    span = hi - lo
    if span == 0:
        return _BLOCKS[0] * data.size
    levels = ((data - lo) / span * (len(_BLOCKS) - 1)).round().astype(int)
    return "".join(_BLOCKS[level] for level in levels)


def ascii_chart(
    series: Mapping[str, Sequence[float]],
    height: int = 12,
    width: int = 64,
    title: str = "",
) -> str:
    """Multi-series ASCII line chart with a shared y-axis.

    Each series gets a distinct plot character; lower is better for the
    waiting-time curves this is used on.
    """
    if not series:
        raise ConfigError("ascii_chart needs at least one series")
    markers = "ox+*#@%&"
    resampled: dict[str, np.ndarray] = {}
    for name, values in series.items():
        data = np.asarray(list(values), dtype=np.float64)
        if data.size == 0:
            raise ConfigError(f"series {name!r} is empty")
        if data.size > width:
            edges = np.linspace(0, data.size, width + 1).astype(int)
            data = np.array([data[a:b].mean() for a, b in zip(edges[:-1], edges[1:])])
        resampled[name] = data
    all_values = np.concatenate(list(resampled.values()))
    lo, hi = float(all_values.min()), float(all_values.max())
    span = hi - lo or 1.0

    canvas_width = max(len(d) for d in resampled.values())
    canvas = [[" "] * canvas_width for _ in range(height)]
    for index, (name, data) in enumerate(resampled.items()):
        marker = markers[index % len(markers)]
        for x, value in enumerate(data):
            y = int(round((hi - value) / span * (height - 1)))
            canvas[y][x] = marker

    lines = []
    if title:
        lines.append(title)
    lines.append(f"{hi:9.1f} +" + "".join(canvas[0]))
    for row in canvas[1:-1]:
        lines.append(" " * 9 + " |" + "".join(row))
    lines.append(f"{lo:9.1f} +" + "".join(canvas[-1]))
    legend = "  ".join(
        f"{markers[i % len(markers)]}={name}" for i, name in enumerate(resampled)
    )
    lines.append(" " * 11 + legend)
    return "\n".join(lines)


def export_history_csv(history: TrainingHistory, path: str | os.PathLike) -> None:
    """Write one training history as CSV (episode, avg_wait, total_reward)."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["episode", "avg_wait_s", "total_reward", "duration_s"])
        for log in history.episodes:
            writer.writerow(
                [log.episode, f"{log.avg_wait:.4f}", f"{log.total_reward:.4f}",
                 f"{log.duration_s:.4f}"]
            )


def export_comparison_csv(
    curves: Mapping[str, Sequence[float]], path: str | os.PathLike
) -> None:
    """Write several training curves side by side (episode, <model>...)."""
    if not curves:
        raise ConfigError("nothing to export")
    names = list(curves)
    length = max(len(list(values)) for values in curves.values())
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["episode"] + names)
        for episode in range(length):
            row: list[str] = [str(episode)]
            for name in names:
                values = list(curves[name])
                row.append(f"{values[episode]:.4f}" if episode < len(values) else "")
            writer.writerow(row)


def training_report(history: TrainingHistory, width: int = 60) -> str:
    """Compact text report of one training run."""
    curve = history.wait_curve
    best = history.best_episode()
    lines = [
        f"model: {history.agent_name}  episodes: {len(curve)}",
        f"wait: first {curve[0]:.1f}s  best {best.avg_wait:.1f}s "
        f"(episode {best.episode})  final {curve[-1]:.1f}s",
        sparkline(curve, width=width),
    ]
    return "\n".join(lines)
