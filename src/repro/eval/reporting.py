"""Result reporting: CSV export and terminal (ASCII) charts.

The paper's figures are line charts of average waiting time per episode.
This module renders those series directly in the terminal and exports
them as CSV so they can be re-plotted with any external tool.
"""

from __future__ import annotations

import csv
import os
from typing import Mapping, Sequence

import numpy as np

from repro.errors import ConfigError
from repro.rl.runner import TrainingHistory

#: Characters used for vertical resolution inside one text row.
_BLOCKS = " .:-=+*#%@"

#: Glyph rendered for non-finite samples (NaN/inf gaps in a series).
_GAP = "?"


def _resample(data: np.ndarray, width: int) -> np.ndarray:
    """Average-pool ``data`` down to ``width`` (NaN-aware)."""
    if data.size <= width:
        return data
    edges = np.linspace(0, data.size, width + 1).astype(int)
    pooled = np.empty(width)
    for index, (a, b) in enumerate(zip(edges[:-1], edges[1:])):
        window = data[a:b]
        finite = window[np.isfinite(window)]
        # A bucket with any finite sample averages those; an entirely
        # non-finite bucket stays NaN and renders as a gap.
        pooled[index] = finite.mean() if finite.size else np.nan
    return pooled


def _finite_bounds(data: np.ndarray, label: str) -> tuple[float, float]:
    """(lo, hi) over finite samples; rejects series with none."""
    finite = data[np.isfinite(data)]
    if finite.size == 0:
        raise ConfigError(f"{label} has no finite values to chart")
    return float(finite.min()), float(finite.max())


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """One-line character chart of a series (resampled to ``width``).

    Non-finite samples (NaN/±inf) render as ``?`` gaps; the scale is
    computed over the finite samples only.  A series with no finite
    sample at all raises :class:`~repro.errors.ConfigError`.
    """
    if width <= 0:
        raise ConfigError("width must be positive")
    data = np.asarray(list(values), dtype=np.float64)
    if data.size == 0:
        raise ConfigError("cannot chart an empty series")
    data = _resample(data, width)
    lo, hi = _finite_bounds(data, "series")
    span = hi - lo
    chars = []
    for value in data:
        if not np.isfinite(value):
            chars.append(_GAP)
        elif span == 0:
            chars.append(_BLOCKS[0])
        else:
            level = int(round(_fraction(value, lo, span) * (len(_BLOCKS) - 1)))
            chars.append(_BLOCKS[min(max(level, 0), len(_BLOCKS) - 1)])
    return "".join(chars)


def _fraction(value: float, lo: float, span: float) -> float:
    """``(value - lo) / span`` hardened against float overflow.

    With a huge range (e.g. ±1e308) either the numerator or the span
    can overflow to inf; map those cases onto the nearest bound instead
    of letting NaN reach an array index.
    """
    with np.errstate(over="ignore", invalid="ignore"):
        fraction = (value - lo) / span
    if np.isnan(fraction):
        return 1.0 if value > lo else 0.0
    return float(min(max(fraction, 0.0), 1.0))


def ascii_chart(
    series: Mapping[str, Sequence[float]],
    height: int = 12,
    width: int = 64,
    title: str = "",
) -> str:
    """Multi-series ASCII line chart with a shared y-axis.

    Each series gets a distinct plot character; lower is better for the
    waiting-time curves this is used on.
    """
    if not series:
        raise ConfigError("ascii_chart needs at least one series")
    if height < 2 or width <= 0:
        raise ConfigError("need height >= 2 and width > 0")
    markers = "ox+*#@%&"
    resampled: dict[str, np.ndarray] = {}
    for name, values in series.items():
        data = np.asarray(list(values), dtype=np.float64)
        if data.size == 0:
            raise ConfigError(f"series {name!r} is empty")
        resampled[name] = _resample(data, width)
    all_values = np.concatenate(list(resampled.values()))
    lo, hi = _finite_bounds(all_values, "chart")
    span = hi - lo or 1.0

    canvas_width = max(len(d) for d in resampled.values())
    canvas = [[" "] * canvas_width for _ in range(height)]
    for index, (name, data) in enumerate(resampled.items()):
        marker = markers[index % len(markers)]
        for x, value in enumerate(data):
            if not np.isfinite(value):
                continue  # non-finite samples leave a gap in the line
            if hi == lo:
                y = 0
            else:
                y = int(round((1.0 - _fraction(value, lo, span)) * (height - 1)))
            canvas[min(max(y, 0), height - 1)][x] = marker

    lines = []
    if title:
        lines.append(title)
    lines.append(f"{hi:9.1f} +" + "".join(canvas[0]))
    for row in canvas[1:-1]:
        lines.append(" " * 9 + " |" + "".join(row))
    lines.append(f"{lo:9.1f} +" + "".join(canvas[-1]))
    legend = "  ".join(
        f"{markers[i % len(markers)]}={name}" for i, name in enumerate(resampled)
    )
    lines.append(" " * 11 + legend)
    return "\n".join(lines)


def export_history_csv(history: TrainingHistory, path: str | os.PathLike) -> None:
    """Write one training history as CSV (episode, avg_wait, total_reward)."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["episode", "avg_wait_s", "total_reward", "duration_s"])
        for log in history.episodes:
            writer.writerow(
                [log.episode, f"{log.avg_wait:.4f}", f"{log.total_reward:.4f}",
                 f"{log.duration_s:.4f}"]
            )


def export_comparison_csv(
    curves: Mapping[str, Sequence[float]], path: str | os.PathLike
) -> None:
    """Write several training curves side by side (episode, <model>...)."""
    if not curves:
        raise ConfigError("nothing to export")
    names = list(curves)
    length = max(len(list(values)) for values in curves.values())
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["episode"] + names)
        for episode in range(length):
            row: list[str] = [str(episode)]
            for name in names:
                values = list(curves[name])
                row.append(f"{values[episode]:.4f}" if episode < len(values) else "")
            writer.writerow(row)


def training_report(history: TrainingHistory, width: int = 60) -> str:
    """Compact text report of one training run."""
    curve = history.wait_curve
    best = history.best_episode()
    lines = [
        f"model: {history.agent_name}  episodes: {len(curve)}",
        f"wait: first {curve[0]:.1f}s  best {best.avg_wait:.1f}s "
        f"(episode {best.episode})  final {curve[-1]:.1f}s",
        sparkline(curve, width=width),
    ]
    return "\n".join(lines)
