"""Sharded rollout entry points: run city-scale episodes end to end.

Thin orchestration over :mod:`repro.sim.sharded`: build the grid
workload (network, phase plans, demand pattern), run one sharded
episode under the chosen controller and return an aggregate summary
with wall-clock throughput.  This is what the ``sharded`` CLI
subcommand and the scaling-curve benchmark drive.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.faults.config import FaultConfig
from repro.scenarios.flows import flow_pattern
from repro.scenarios.grid import GridScenario, build_grid
from repro.sim.sharded import ShardedSimulation, run_sharded


@dataclass
class ShardedEpisodeResult:
    """Aggregate outcome of one sharded episode."""

    ticks: int
    num_shards: int
    workers: bool
    edge_cut: int
    shard_sizes: list[int]
    created: int
    finished: int
    in_network: int
    pending: int
    in_flight: int
    handoffs: int
    link_losses: int
    message_losses: int
    avg_travel_time: float
    avg_wait: float
    elapsed_s: float
    ticks_per_second: float
    summary: dict = field(repr=False, default_factory=dict)


def sharded_grid_workload(
    rows: int,
    cols: int,
    pattern: int = 5,
    *,
    peak_rate: float = 500.0,
    t_peak: float = 900.0,
    light_duration: float = 1800.0,
) -> tuple[GridScenario, list]:
    """Build the grid scenario and demand flows for a sharded episode.

    ``pattern`` follows :func:`repro.scenarios.flows.flow_pattern`
    (1–4 = the paper's congested corridor patterns, 5 = light uniform
    demand on every row and column — the default city-scale workload,
    whose flow count grows O(rows + cols)).
    """
    scenario = build_grid(rows, cols)
    flows = flow_pattern(
        scenario,
        pattern,
        peak_rate=peak_rate,
        t_peak=t_peak,
        light_duration=light_duration,
    )
    return scenario, flows


def run_sharded_episode(
    rows: int,
    cols: int,
    num_shards: int,
    ticks: int,
    *,
    pattern: int = 5,
    seed: int = 0,
    controller: str = "fixed_time",
    workers: bool = True,
    faults: FaultConfig | None = None,
    telemetry=None,
    green_time: int = 15,
    delta_t: int = 5,
    peak_rate: float = 500.0,
    t_peak: float = 900.0,
    light_duration: float | None = None,
) -> ShardedEpisodeResult:
    """Run one sharded episode on a ``rows x cols`` grid and summarize.

    ``workers=True`` places each shard in a persistent forked worker
    process; ``workers=False`` (or ``num_shards=1``) runs the identical
    protocol serially in-process.
    """
    if ticks <= 0:
        raise ConfigError("ticks must be positive")
    if light_duration is None:
        light_duration = float(ticks)
    scenario, flows = sharded_grid_workload(
        rows,
        cols,
        pattern,
        peak_rate=peak_rate,
        t_peak=t_peak,
        light_duration=light_duration,
    )
    summary = run_sharded(
        scenario.network,
        scenario.phase_plans,
        flows,
        num_shards,
        ticks,
        seed=seed,
        workers=workers,
        controller=controller,
        green_time=green_time,
        delta_t=delta_t,
        faults=faults,
        telemetry=telemetry,
    )
    return ShardedEpisodeResult(
        ticks=summary["ticks"],
        num_shards=num_shards,
        workers=workers,
        edge_cut=summary["edge_cut"],
        shard_sizes=summary["shard_sizes"],
        created=summary["created"],
        finished=summary["finished"],
        in_network=summary["in_network"],
        pending=summary["pending"],
        in_flight=summary["in_flight"],
        handoffs=summary["handoffs"],
        link_losses=summary["link_losses"],
        message_losses=summary["message_losses"],
        avg_travel_time=summary["avg_travel_time"],
        avg_wait=summary["avg_wait"],
        elapsed_s=summary["elapsed_s"],
        ticks_per_second=summary["ticks_per_second"],
        summary=summary,
    )
