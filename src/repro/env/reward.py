"""Reward computation (paper Eq. 6).

    r_{t,i} = -( sum_l halting_{t+dt}[l] + max_l wait_{t+dt}[l] )

where ``l`` ranges over the incoming lanes of intersection ``i``.  The
reward is evaluated *after* the action's execution interval, i.e. at
``t + delta_t``, and is scaled by ``reward_scale`` to keep advantage
magnitudes friendly to small networks.
"""

from __future__ import annotations

from repro.sim.engine import Simulation

#: Default multiplicative reward scale.  Raw Eq. 6 values reach several
#: hundreds under saturation; 0.01 keeps returns in single digits.
DEFAULT_REWARD_SCALE = 0.01


def intersection_reward(
    sim: Simulation, node_id: str, reward_scale: float = DEFAULT_REWARD_SCALE
) -> float:
    """Eq. 6 reward for one intersection at the simulator's current tick."""
    node = sim.network.nodes[node_id]
    halting_sum = 0
    max_wait = 0
    for link_id in node.incoming:
        link = sim.network.links[link_id]
        for lane in link.lanes:
            halting_sum += sim.queue_length(lane.lane_id)
            wait = sim.head_wait(lane.lane_id)
            if wait > max_wait:
                max_wait = wait
    return -reward_scale * (halting_sum + max_wait)


def all_rewards(
    sim: Simulation, node_ids: list[str], reward_scale: float = DEFAULT_REWARD_SCALE
) -> dict[str, float]:
    """Eq. 6 rewards for every agent."""
    return {
        node_id: intersection_reward(sim, node_id, reward_scale) for node_id in node_ids
    }
