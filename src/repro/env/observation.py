"""State construction (paper Eq. 5).

The local observation of intersection *i* at time *t* is the link-level
pressure and head-vehicle waiting time of its input links, both measured
through range-limited detectors:

    o_{t,i} = pressure_t(L, M), wait_t(L, M)

Links are arranged in a fixed compass order (N, E, S, W approach slots)
and missing approaches are zero-padded so that homogeneous intersections
share one observation layout — the precondition for parameter sharing.
Heterogeneous nodes with more approaches get wider vectors; parameter
sharing is then disabled by the caller (paper Section V-A).
"""

from __future__ import annotations

import math

import numpy as np

from repro.sim.detectors import DetectorSuite
from repro.sim.network import RoadNetwork

#: Normalisation constants: pressures are divided by the number of
#: detector slots, waits by a 5-minute horizon.  Keeping observations
#: roughly in [-1, 1] stabilises the small MLP+LSTM networks.
WAIT_NORMALISER = 300.0

#: Default number of approach slots (N, E, S, W).
DEFAULT_APPROACH_SLOTS = 4

#: Features per approach slot: (pressure, head wait).
FEATURES_PER_APPROACH = 2


def _approach_bearing(network: RoadNetwork, link_id: str) -> float:
    """Bearing (degrees, 0 = from north, clockwise) of an incoming link.

    Computed from the direction the link *arrives from*, so a link whose
    traffic flows southward arrives from the north (bearing 0).
    """
    hx, hy = network.link_heading(link_id)
    # Arrival direction is the reverse of the heading.
    ax, ay = -hx, -hy
    angle = math.degrees(math.atan2(ax, ay))  # 0 = north, 90 = east
    return angle % 360.0


def approach_slots(
    network: RoadNetwork, node_id: str, num_slots: int = DEFAULT_APPROACH_SLOTS
) -> list[str | None]:
    """Assign each incoming link of a node to a compass slot.

    Returns a list of ``num_slots`` link ids (or ``None`` for empty
    slots).  When a node has more incoming links than slots, the slot
    count is grown to fit (heterogeneous nodes); collisions within a slot
    fall back to order-of-bearing assignment into free slots.
    """
    node = network.nodes[node_id]
    incoming = sorted(node.incoming, key=lambda l: _approach_bearing(network, l))
    slots_needed = max(num_slots, len(incoming))
    slots: list[str | None] = [None] * slots_needed
    unplaced: list[str] = []
    width = 360.0 / num_slots
    for link_id in incoming:
        index = int(((_approach_bearing(network, link_id) + width / 2) % 360.0) // width)
        if index < slots_needed and slots[index] is None:
            slots[index] = link_id
        else:
            unplaced.append(link_id)
    for link_id in unplaced:
        free = slots.index(None)
        slots[free] = link_id
    return slots


class ObservationBuilder:
    """Builds Eq. 5 observation vectors from detector readings."""

    def __init__(
        self,
        network: RoadNetwork,
        num_slots: int = DEFAULT_APPROACH_SLOTS,
        wait_normaliser: float = WAIT_NORMALISER,
    ) -> None:
        self.network = network
        self.num_slots = num_slots
        self.wait_normaliser = wait_normaliser
        self._slots: dict[str, list[str | None]] = {
            node_id: approach_slots(network, node_id, num_slots)
            for node_id in network.signalized_nodes()
        }

    def slots_for(self, node_id: str) -> list[str | None]:
        return list(self._slots[node_id])

    def obs_dim(self, node_id: str) -> int:
        return len(self._slots[node_id]) * FEATURES_PER_APPROACH

    def pressure_normaliser(self, detectors: DetectorSuite) -> float:
        """Scale factor so observed pressures land roughly in [-1, 1]."""
        from repro.sim.network import VEHICLE_SPACE_M

        return max(1.0, detectors.coverage / VEHICLE_SPACE_M)

    def build(self, detectors: DetectorSuite, node_id: str) -> np.ndarray:
        """Observation vector for one intersection at the current tick."""
        norm_p = self.pressure_normaliser(detectors)
        features: list[float] = []
        for link_id in self._slots[node_id]:
            if link_id is None:
                features.extend((0.0, 0.0))
                continue
            pressure = detectors.link_pressure(link_id) / norm_p
            wait = detectors.head_wait(link_id) / self.wait_normaliser
            features.extend((pressure, wait))
        return np.asarray(features, dtype=np.float64)

    def link_pressures(self, detectors: DetectorSuite, node_id: str) -> np.ndarray:
        """Per-slot link pressures only (used for critic neighbour input)."""
        norm_p = self.pressure_normaliser(detectors)
        values = [
            0.0 if link_id is None else detectors.link_pressure(link_id) / norm_p
            for link_id in self._slots[node_id]
        ]
        return np.asarray(values, dtype=np.float64)
