"""Multi-agent traffic-signal-control environment.

Gym-style interface over the mesoscopic simulator: one agent per
signalized intersection, actions are phase choices executed for
``delta_t`` seconds (plus yellow on switches), observations follow
paper Eq. 5 and rewards Eq. 6.

Two episode modes:

* **training** (``drain=False``) — the episode ends at ``horizon_ticks``.
* **evaluation** (``drain=True``) — after the demand horizon the episode
  continues until the network empties or ``max_ticks`` is reached, so
  that average travel time accounts for every emitted vehicle (how the
  paper's Table II numbers exceed the simulation horizon under
  congestion collapse).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import ConfigError
from repro.env.observation import ObservationBuilder
from repro.env.reward import DEFAULT_REWARD_SCALE, all_rewards
from repro.env.spaces import BoxSpace, DiscreteSpace
from repro.sim.demand import DemandGenerator, Flow
from repro.sim.detectors import DEFAULT_COVERAGE_M, DetectorSuite
from repro.sim.engine import (
    DEFAULT_SATURATION_RATE,
    DEFAULT_STARTUP_LOST_TIME,
    Simulation,
)
from repro.sim.metrics import average_travel_time, network_average_wait
from repro.sim.network import RoadNetwork
from repro.sim.routing import Router
from repro.sim.signal import PhasePlan

if TYPE_CHECKING:  # runtime import is lazy to avoid a package cycle
    from repro.faults.config import FaultConfig
    from repro.faults.incidents import IncidentSchedule
    from repro.faults.schedule import FaultSchedule


@dataclass
class EnvConfig:
    """Environment parameters (paper Section VI-A defaults)."""

    delta_t: int = 5
    yellow_time: int = 2
    coverage: float = DEFAULT_COVERAGE_M
    horizon_ticks: int = 2700
    max_ticks: int = 14400
    drain: bool = False
    reward_scale: float = DEFAULT_REWARD_SCALE
    saturation_rate: float = DEFAULT_SATURATION_RATE
    startup_lost_time: float = DEFAULT_STARTUP_LOST_TIME
    stochastic_demand: bool = True
    #: Simulation backend: ``"object"`` is the reference
    #: object-per-vehicle :class:`Simulation`; ``"soa"`` runs a
    #: single-replica :class:`repro.sim.soa.SoAEngine` behind the same
    #: API (bit-exact, faster; see DESIGN.md "SoA engine").
    engine: str = "object"
    #: Optional fault injection (see :mod:`repro.faults`); ``None`` = healthy.
    faults: FaultConfig | None = None
    #: Optional scheduled lane/link closures
    #: (:class:`repro.faults.incidents.IncidentSchedule`), attached to the
    #: simulation each episode.  The schedule is stateless, so sharing one
    #: object across episodes and engines is safe.
    incidents: IncidentSchedule | None = None
    #: Graceful sensing degradation: impute dropped detector readings
    #: from last-known values.  ``False`` is the no-fallback ablation.
    fault_degrade: bool = True

    def __post_init__(self) -> None:
        if self.delta_t <= 0:
            raise ConfigError("delta_t must be positive")
        if self.horizon_ticks <= 0 or self.max_ticks < self.horizon_ticks:
            raise ConfigError("need 0 < horizon_ticks <= max_ticks")
        if self.engine not in ("object", "soa"):
            raise ConfigError(
                f"engine must be 'object' or 'soa', got {self.engine!r}"
            )


@dataclass
class StepResult:
    """Outcome of one environment step (all keyed by agent/node id)."""

    observations: dict[str, np.ndarray]
    rewards: dict[str, float]
    done: bool
    info: dict = field(default_factory=dict)


class TrafficSignalEnv:
    """The multi-agent TSC environment.

    Parameters
    ----------
    network:
        Validated road network.
    phase_plans:
        Phase plan per signalized node.
    flows:
        Demand flows (copied fresh each reset).
    config:
        Environment parameters.
    seed:
        Base seed; episode ``k`` after construction uses ``seed + k`` for
        demand randomisation unless ``reset(seed=...)`` overrides it.
    """

    def __init__(
        self,
        network: RoadNetwork,
        phase_plans: dict[str, PhasePlan],
        flows: list[Flow],
        config: EnvConfig | None = None,
        seed: int = 0,
    ) -> None:
        self.network = network
        self.phase_plans = phase_plans
        self.flows = flows
        self.config = config or EnvConfig()
        self._base_seed = seed
        self._episode_count = 0
        self.router = Router(network)
        self.agent_ids: list[str] = sorted(network.signalized_nodes())
        self.obs_builder = ObservationBuilder(network)
        self.observation_spaces: dict[str, BoxSpace] = {
            node_id: BoxSpace(self.obs_builder.obs_dim(node_id))
            for node_id in self.agent_ids
        }
        self.action_spaces: dict[str, DiscreteSpace] = {
            node_id: DiscreteSpace(phase_plans[node_id].num_phases)
            for node_id in self.agent_ids
        }
        self.sim: Simulation | None = None
        self.detectors: DetectorSuite | None = None
        self._pressure_cache_time = -1
        self._pressure_cache: dict[str, np.ndarray] = {}
        self.fault_schedule: FaultSchedule | None = None
        if self.config.faults is not None and self.config.faults.active:
            from repro.faults.schedule import FaultSchedule as _FaultSchedule

            self.fault_schedule = _FaultSchedule(self.config.faults, seed=seed)
        #: Optional telemetry sink (see :meth:`attach_telemetry`).
        self._telemetry = None
        self._teleports_seen = 0

    # ------------------------------------------------------------------
    # Topology helpers used by coordinated agents
    # ------------------------------------------------------------------
    def neighbours(self, node_id: str) -> list[str]:
        return self.network.neighbours(node_id)

    def upstream_neighbours(self, node_id: str) -> list[str]:
        return self.network.upstream_neighbours(node_id)

    def two_hop_neighbours(self, node_id: str) -> list[str]:
        return self.network.two_hop_neighbours(node_id)

    @property
    def homogeneous(self) -> bool:
        """Whether all agents share observation/action space shapes."""
        obs_dims = {space.dim for space in self.observation_spaces.values()}
        act_dims = {space.n for space in self.action_spaces.values()}
        return len(obs_dims) == 1 and len(act_dims) == 1

    # ------------------------------------------------------------------
    # Telemetry (opt-in; zero overhead and zero RNG impact when unset)
    # ------------------------------------------------------------------
    def attach_telemetry(self, telemetry) -> None:
        """Stream env/sim/fault observability into ``telemetry``.

        Wires the metric registry into the simulation engine, surfaces
        teleport events, and routes the fault schedule's activation
        events into the sink.  Everything here only *reads* state —
        no RNG stream is ever touched, so an instrumented run is
        bit-exact with an uninstrumented one.
        """
        self._telemetry = telemetry
        if self.fault_schedule is not None:
            self.fault_schedule.event_sink = telemetry
        if self.sim is not None:
            self.sim.metrics = telemetry.metrics
            self._teleports_seen = self.sim.teleport_count

    # ------------------------------------------------------------------
    # Episode control
    # ------------------------------------------------------------------
    def reset(self, seed: int | None = None) -> dict[str, np.ndarray]:
        """Start a fresh episode and return initial observations."""
        if seed is None:
            seed = self._base_seed + self._episode_count
        self._episode_count += 1
        demand = self._fresh_demand(seed)
        if self.config.engine == "soa":
            from repro.sim.soa import SoAEngine

            sim = SoAEngine(
                self.network,
                [demand],
                self.phase_plans,
                yellow_time=self.config.yellow_time,
                saturation_rate=self.config.saturation_rate,
                startup_lost_time=self.config.startup_lost_time,
            ).view(0)
        else:
            sim = Simulation(
                self.network,
                demand,
                self.phase_plans,
                yellow_time=self.config.yellow_time,
                saturation_rate=self.config.saturation_rate,
                startup_lost_time=self.config.startup_lost_time,
            )
        return self._adopt_sim(sim, seed)

    def _fresh_demand(self, seed: int) -> DemandGenerator:
        """A fresh seeded generator over copies of this env's flows."""
        return DemandGenerator(
            [Flow(f.name, f.origin_link, f.destination_link, f.profile) for f in self.flows],
            self.router,
            seed=seed,
            stochastic=self.config.stochastic_demand,
        )

    def _adopt_sim(self, sim, seed: int) -> dict[str, np.ndarray]:
        """Install ``sim`` (a Simulation or an SoA replica view) as this
        episode's backend and return the initial observations.  Also the
        entry point for :class:`repro.eval.batched.LockstepEnvGroup`,
        which hands every env a replica view of one shared engine."""
        self.sim = sim
        if self.config.incidents is not None:
            self.sim.incidents = self.config.incidents
        if self._telemetry is not None:
            self.sim.metrics = self._telemetry.metrics
            self._teleports_seen = 0
        if self.fault_schedule is not None:
            self.fault_schedule.begin_episode(seed)
        if self.fault_schedule is not None and self.config.faults.any_detector_faults:
            from repro.faults.detectors import FaultyDetectorSuite

            self.detectors = FaultyDetectorSuite(
                self.sim,
                self.fault_schedule,
                coverage=self.config.coverage,
                degrade=self.config.fault_degrade,
            )
        else:
            self.detectors = DetectorSuite(self.sim, coverage=self.config.coverage)
        return self._observe_all()

    def step(self, actions: dict[str, int]) -> StepResult:
        """Apply one phase decision per agent and advance ``delta_t`` s."""
        if self.sim is None:
            raise ConfigError("call reset() before step()")
        self._apply_actions(actions)
        self.sim.step(self.config.delta_t)
        return self._finish_step()

    def _apply_actions(self, actions: dict[str, int]) -> None:
        """Validate and request this step's phase choices (no stepping)."""
        for node_id, action in actions.items():
            if not self.action_spaces[node_id].contains(int(action)):
                raise ConfigError(
                    f"invalid action {action!r} for agent {node_id!r} "
                    f"({self.action_spaces[node_id].n} phases)"
                )
            self.sim.set_phase(node_id, int(action))

    def _finish_step(self) -> StepResult:
        """Observe/reward/report after the simulator advanced ``delta_t``.

        Split from :meth:`step` so ``LockstepEnvGroup`` can advance a
        shared batched engine once and then finish every member env."""
        observations = self._observe_all()
        rewards = all_rewards(self.sim, self.agent_ids, self.config.reward_scale)
        done = self._is_done()
        info = {
            "time": self.sim.time,
            "vehicles_in_network": self.sim.vehicles_in_network(),
            "pending_insertions": self.sim.pending_insertions(),
            "average_wait": network_average_wait(self.sim),
        }
        if done:
            info["average_travel_time"] = average_travel_time(self.sim)
            info["finished_vehicles"] = len(self.sim.finished_vehicles)
            info["total_created"] = self.sim.total_created
        if self._telemetry is not None:
            self._telemetry.metrics.count("env.steps")
            if self.sim.teleport_count != self._teleports_seen:
                self._telemetry.teleport(
                    self.sim.time, self.sim.teleport_count - self._teleports_seen
                )
                self._teleports_seen = self.sim.teleport_count
            if done:
                self._telemetry.metrics.gauge("env.last_episode_ticks", self.sim.time)
                self._telemetry.metrics.gauge(
                    "env.last_vehicles_in_network", info["vehicles_in_network"]
                )
        return StepResult(observations, rewards, done, info)

    def _is_done(self) -> bool:
        assert self.sim is not None
        if self.config.drain:
            if self.sim.time >= self.config.max_ticks:
                return True
            return self.sim.time >= self.config.horizon_ticks and self.sim.is_drained()
        return self.sim.time >= self.config.horizon_ticks

    # ------------------------------------------------------------------
    # Observation plumbing
    # ------------------------------------------------------------------
    def _observe_all(self) -> dict[str, np.ndarray]:
        assert self.detectors is not None
        return {
            node_id: self.obs_builder.build(self.detectors, node_id)
            for node_id in self.agent_ids
        }

    def link_pressures(self, node_id: str) -> np.ndarray:
        """Per-approach pressures of one intersection (critic input).

        Cached per tick: centralized critics query overlapping
        neighbourhoods, so each node's pressures are computed once.
        """
        assert self.detectors is not None and self.sim is not None
        if self._pressure_cache_time != self.sim.time:
            self._pressure_cache_time = self.sim.time
            self._pressure_cache = {}
        cached = self._pressure_cache.get(node_id)
        if cached is None:
            cached = self.obs_builder.link_pressures(self.detectors, node_id)
            self._pressure_cache[node_id] = cached
        return cached

    def congestion_score(self, node_id: str) -> float:
        """Observed congestion at a node (partner-selection ranking)."""
        assert self.detectors is not None
        return self.detectors.intersection_congestion(node_id)

    def average_travel_time(self) -> float:
        assert self.sim is not None
        return average_travel_time(self.sim)
