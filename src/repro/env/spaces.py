"""Lightweight space descriptors for the multi-agent environment."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class DiscreteSpace:
    """A discrete action space of ``n`` choices (signal phases)."""

    n: int

    def __post_init__(self) -> None:
        if self.n <= 0:
            raise ConfigError("discrete space needs at least one action")

    def contains(self, action: int) -> bool:
        return isinstance(action, (int,)) and 0 <= action < self.n


@dataclass(frozen=True)
class BoxSpace:
    """A flat continuous observation space of dimension ``dim``."""

    dim: int

    def __post_init__(self) -> None:
        if self.dim <= 0:
            raise ConfigError("box space needs positive dimension")
