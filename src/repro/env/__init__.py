"""Multi-agent RL environment over the traffic simulator."""

from repro.env.observation import (
    DEFAULT_APPROACH_SLOTS,
    FEATURES_PER_APPROACH,
    ObservationBuilder,
    approach_slots,
)
from repro.env.reward import DEFAULT_REWARD_SCALE, all_rewards, intersection_reward
from repro.env.spaces import BoxSpace, DiscreteSpace
from repro.env.tsc_env import EnvConfig, StepResult, TrafficSignalEnv

__all__ = [
    "BoxSpace",
    "DEFAULT_APPROACH_SLOTS",
    "DEFAULT_REWARD_SCALE",
    "DiscreteSpace",
    "EnvConfig",
    "FEATURES_PER_APPROACH",
    "ObservationBuilder",
    "StepResult",
    "TrafficSignalEnv",
    "all_rewards",
    "approach_slots",
    "intersection_reward",
]
