"""Gradient-based optimizers and gradient utilities.

Step loops are written as fused in-place numpy sequences: each optimizer
preallocates two flat scratch buffers sized to the largest parameter and
updates ``param.data`` in place, so a step allocates nothing.  Every
in-place sequence reproduces the floating-point groupings of the naive
expression-per-line formulation bit-for-bit (IEEE-754 multiplication is
commutative, so e.g. ``grad * lr`` into a buffer equals ``lr * grad``).
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Parameter


class Optimizer:
    """Base class: holds the parameter list and zero-grad plumbing."""

    def __init__(self, parameters, lr: float) -> None:
        self.parameters: list[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr
        largest = max(p.data.size for p in self.parameters)
        self._scratch_a = np.empty(largest)
        self._scratch_b = np.empty(largest)

    def _scratch(self, param: Parameter) -> tuple[np.ndarray, np.ndarray]:
        """Shaped views into the shared scratch buffers for ``param``."""
        n = param.data.size
        shape = param.data.shape
        return (
            self._scratch_a[:n].reshape(shape),
            self._scratch_b[:n].reshape(shape),
        )

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Serialization (crash-safe training resume)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy of the optimizer's internal state (moments, step count)."""
        return {}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Restore state produced by :meth:`state_dict`.

        Raises ``KeyError`` / ``ValueError`` on mismatched keys or
        shapes, mirroring :meth:`repro.nn.module.Module.load_state_dict`.
        """
        if state:
            raise KeyError(f"unexpected optimizer state keys {sorted(state)}")

    @staticmethod
    def _load_slots(
        slots: list[np.ndarray], state: dict[str, np.ndarray], prefix: str
    ) -> None:
        """Fill per-parameter slot arrays (moments) from a state dict."""
        for index, slot in enumerate(slots):
            key = f"{prefix}{index}"
            if key not in state:
                raise KeyError(f"optimizer state missing {key}")
            value = np.asarray(state[key], dtype=np.float64)
            if value.shape != slot.shape:
                raise ValueError(
                    f"optimizer state shape mismatch for {key}: "
                    f"expected {slot.shape}, got {value.shape}"
                )
            slot[...] = value


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, parameters, lr: float, momentum: float = 0.0) -> None:
        super().__init__(parameters, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must lie in [0, 1)")
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            s, _ = self._scratch(param)
            velocity *= self.momentum
            np.multiply(param.grad, self.lr, out=s)
            velocity -= s
            param.data += velocity

    def state_dict(self) -> dict[str, np.ndarray]:
        return {f"velocity.{i}": v.copy() for i, v in enumerate(self._velocity)}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        self._load_slots(self._velocity, state, "velocity.")


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) — the default for PPO in this repo."""

    def __init__(
        self,
        parameters,
        lr: float = 3e-4,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
    ) -> None:
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self._step = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step += 1
        bias1 = 1.0 - self.beta1**self._step
        bias2 = 1.0 - self.beta2**self._step
        for param, m, v in zip(self.parameters, self._m, self._v):
            if param.grad is None:
                continue
            grad = param.grad
            s, t = self._scratch(param)
            m *= self.beta1
            np.multiply(grad, 1.0 - self.beta1, out=s)
            m += s
            v *= self.beta2
            np.multiply(grad, grad, out=s)
            s *= 1.0 - self.beta2
            v += s
            np.divide(v, bias2, out=t)  # v_hat
            np.sqrt(t, out=t)
            t += self.eps
            np.divide(m, bias1, out=s)  # m_hat
            s *= self.lr
            s /= t
            param.data -= s

    def state_dict(self) -> dict[str, np.ndarray]:
        state: dict[str, np.ndarray] = {"step": np.asarray(self._step)}
        state.update({f"m.{i}": m.copy() for i, m in enumerate(self._m)})
        state.update({f"v.{i}": v.copy() for i, v in enumerate(self._v)})
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        if "step" not in state:
            raise KeyError("optimizer state missing step")
        self._load_slots(self._m, state, "m.")
        self._load_slots(self._v, state, "v.")
        self._step = int(state["step"])


class RMSProp(Optimizer):
    """RMSProp — the optimizer MA2C's reference implementation uses."""

    def __init__(
        self,
        parameters,
        lr: float = 5e-4,
        alpha: float = 0.99,
        eps: float = 1e-5,
    ) -> None:
        super().__init__(parameters, lr)
        self.alpha = alpha
        self.eps = eps
        self._sq = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for param, sq in zip(self.parameters, self._sq):
            if param.grad is None:
                continue
            grad = param.grad
            s, t = self._scratch(param)
            sq *= self.alpha
            np.multiply(grad, grad, out=s)
            s *= 1.0 - self.alpha
            sq += s
            np.sqrt(sq, out=t)
            t += self.eps
            np.multiply(grad, self.lr, out=s)
            s /= t
            param.data -= s

    def state_dict(self) -> dict[str, np.ndarray]:
        return {f"sq.{i}": sq.copy() for i, sq in enumerate(self._sq)}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        self._load_slots(self._sq, state, "sq.")


def clip_grad_norm(parameters, max_norm: float) -> float:
    """Scale gradients in-place so their global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm (useful for logging).
    """
    params = [p for p in parameters if p.grad is not None]
    total = float(np.sqrt(sum(float((p.grad**2).sum()) for p in params)))
    if total > max_norm and total > 0:
        scale = max_norm / (total + 1e-12)
        for param in params:
            param.grad *= scale
    return total
