"""Dense layers and elementwise activation modules."""

from __future__ import annotations

import numpy as np

from repro.nn.initializers import initialize
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor, affine


class Linear(Module):
    """Affine transform ``y = x W + b``.

    Parameters
    ----------
    in_features, out_features:
        Input / output widths.
    rng:
        Random generator used for weight initialization (determinism is a
        project-wide requirement; layers never touch global numpy state).
    init:
        Name of the initialization scheme (see :mod:`repro.nn.initializers`).
    gain:
        Initialization gain; PPO convention is ``sqrt(2)`` for hidden layers
        and small gains (0.01) for policy output heads.
    bias:
        Whether to learn an additive bias.
    fused:
        Run through the single-node :func:`repro.nn.tensor.affine` op
        (default) instead of the composed matmul + add pair; both paths
        are bit-exact in forwards and gradients.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        init: str = "orthogonal",
        gain: float = float(np.sqrt(2.0)),
        bias: bool = True,
        fused: bool = True,
    ) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("Linear sizes must be positive")
        self.in_features = in_features
        self.out_features = out_features
        self.fused = bool(fused)
        self.weight = Parameter(initialize(init, (in_features, out_features), rng, gain))
        self.bias = Parameter(np.zeros(out_features)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        x = Tensor.ensure(x)
        if x.shape[-1] != self.in_features:
            raise ValueError(
                f"Linear expected last dim {self.in_features}, got {x.shape[-1]}"
            )
        if self.fused:
            return affine(x, self.weight, self.bias)
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class Tanh(Module):
    """Elementwise hyperbolic-tangent activation module."""

    def forward(self, x: Tensor) -> Tensor:
        return Tensor.ensure(x).tanh()


class ReLU(Module):
    """Elementwise rectified-linear activation module."""

    def forward(self, x: Tensor) -> Tensor:
        return Tensor.ensure(x).relu()


class Sigmoid(Module):
    """Elementwise logistic activation module."""

    def forward(self, x: Tensor) -> Tensor:
        return Tensor.ensure(x).sigmoid()


class MLP(Module):
    """Multi-layer perceptron with a configurable activation.

    ``hidden`` lists the hidden widths; the output layer gets its own
    ``out_gain`` (policy heads typically use a small gain so that the
    initial policy is near-uniform).
    """

    def __init__(
        self,
        in_features: int,
        hidden: list[int],
        out_features: int,
        rng: np.random.Generator,
        activation: str = "tanh",
        init: str = "orthogonal",
        out_gain: float = 1.0,
    ) -> None:
        super().__init__()
        if activation not in ("tanh", "relu"):
            raise ValueError(f"unsupported activation {activation!r}")
        self.activation = activation
        widths = [in_features] + list(hidden)
        self.hidden_layers = []
        for index, (fan_in, fan_out) in enumerate(zip(widths[:-1], widths[1:])):
            layer = Linear(fan_in, fan_out, rng, init=init)
            setattr(self, f"hidden{index}", layer)
            self.hidden_layers.append(layer)
        self.output = Linear(widths[-1], out_features, rng, init=init, gain=out_gain)

    def forward(self, x: Tensor) -> Tensor:
        h = Tensor.ensure(x)
        for layer in self.hidden_layers:
            h = layer(h)
            h = h.tanh() if self.activation == "tanh" else h.relu()
        return self.output(h)
