"""Checkpoint save / load for :class:`repro.nn.module.Module` state dicts.

Checkpoints are plain ``.npz`` archives so they stay portable and
inspectable without this library.

Writes are **atomic**: the archive is written to a temporary sibling file
and moved into place with :func:`os.replace`, so a crash mid-write can
never leave a truncated checkpoint behind — the previous one survives
intact.  Loads are **validated**: unreadable archives and missing /
unexpected / shape-mismatched keys raise
:class:`repro.errors.CheckpointError` instead of leaking raw
``KeyError`` / ``zipfile`` internals.
"""

from __future__ import annotations

import os
import tempfile
import zipfile

import numpy as np

from repro.errors import CheckpointError
from repro.nn.module import Module


def atomic_savez(path: str | os.PathLike, arrays: dict[str, np.ndarray]) -> None:
    """Write ``arrays`` to an ``.npz`` archive atomically.

    ``np.savez`` appends ``.npz`` when missing, so the temporary file is
    created with the suffix already in place and renamed over ``path``.
    """
    path = os.fspath(path)
    if not path.endswith(".npz"):
        path += ".npz"
    directory = os.path.dirname(path) or "."
    fd, tmp_path = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".tmp", suffix=".npz", dir=directory
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            np.savez(handle, **arrays)
        os.replace(tmp_path, path)
    except BaseException:
        if os.path.exists(tmp_path):
            os.unlink(tmp_path)
        raise


def read_archive(path: str | os.PathLike) -> dict[str, np.ndarray]:
    """Load every array of an ``.npz`` archive written by us.

    Raises :class:`CheckpointError` for missing or unreadable files
    (e.g. a checkpoint truncated by a non-atomic writer).
    """
    try:
        with np.load(path) as archive:
            return {name: archive[name] for name in archive.files}
    except FileNotFoundError as error:
        raise CheckpointError(f"checkpoint not found: {path}") from error
    except (zipfile.BadZipFile, OSError, ValueError, KeyError) as error:
        raise CheckpointError(f"unreadable checkpoint {path}: {error}") from error


def save_state(module: Module, path: str | os.PathLike) -> None:
    """Write ``module.state_dict()`` to an ``.npz`` archive atomically."""
    atomic_savez(path, module.state_dict())


def load_state(module: Module, path: str | os.PathLike) -> None:
    """Load an archive written by :func:`save_state` into ``module``.

    Validates the archive against the module: missing, unexpected or
    shape-mismatched keys raise :class:`CheckpointError`.
    """
    state = read_archive(path)
    try:
        module.load_state_dict(state)
    except (KeyError, ValueError) as error:
        raise CheckpointError(
            f"checkpoint {os.fspath(path)} does not match module: {error}"
        ) from error
