"""Checkpoint save / load for :class:`repro.nn.module.Module` state dicts.

Checkpoints are plain ``.npz`` archives so they stay portable and
inspectable without this library.
"""

from __future__ import annotations

import os

import numpy as np

from repro.nn.module import Module


def save_state(module: Module, path: str | os.PathLike) -> None:
    """Write ``module.state_dict()`` to an ``.npz`` archive."""
    state = module.state_dict()
    np.savez(path, **state)


def load_state(module: Module, path: str | os.PathLike) -> None:
    """Load an archive written by :func:`save_state` into ``module``."""
    with np.load(path) as archive:
        state = {name: archive[name] for name in archive.files}
    module.load_state_dict(state)
