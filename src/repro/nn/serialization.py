"""Checkpoint save / load for :class:`repro.nn.module.Module` state dicts.

Checkpoints are plain ``.npz`` archives so they stay portable and
inspectable without this library.

Writes are **atomic**: the archive is written to a temporary sibling file
and moved into place with :func:`os.replace`, so a crash mid-write can
never leave a truncated checkpoint behind — the previous one survives
intact.  Loads are **validated**: unreadable archives and missing /
unexpected / shape-mismatched keys raise
:class:`repro.errors.CheckpointError` instead of leaking raw
``KeyError`` / ``zipfile`` internals.
"""

from __future__ import annotations

import os
import tempfile

import numpy as np

from repro.errors import CheckpointError
from repro.nn.module import Module


def atomic_savez(path: str | os.PathLike, arrays: dict[str, np.ndarray]) -> None:
    """Write ``arrays`` to an ``.npz`` archive atomically.

    ``np.savez`` appends ``.npz`` when missing, so the temporary file is
    created with the suffix already in place and renamed over ``path``.
    """
    path = os.fspath(path)
    if not path.endswith(".npz"):
        path += ".npz"
    directory = os.path.dirname(path) or "."
    fd, tmp_path = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".tmp", suffix=".npz", dir=directory
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            np.savez(handle, **arrays)
        os.replace(tmp_path, path)
    except BaseException:
        if os.path.exists(tmp_path):
            os.unlink(tmp_path)
        raise


def read_archive(
    path: str | os.PathLike, require_finite: bool = False
) -> dict[str, np.ndarray]:
    """Load every array of an ``.npz`` archive written by us.

    Raises :class:`CheckpointError` for missing or unreadable files.
    The except clause is deliberately broad: a truncated or bit-flipped
    archive can surface as almost anything out of the zip/pickle/npy
    stack (``BadZipFile``, ``OSError``, ``EOFError``, ``struct.error``,
    …) and every one of them must come out as a clean
    :class:`CheckpointError`, never a raw internal crash.

    ``require_finite=True`` additionally rejects archives containing
    NaN/inf float values — a bit-flip in an ``.npy`` payload region can
    pass the zip CRC boundary checks yet produce non-finite weights,
    which must never be loaded silently into a live policy.
    """
    try:
        with np.load(path) as archive:
            state = {name: archive[name] for name in archive.files}
    except FileNotFoundError as error:
        raise CheckpointError(f"checkpoint not found: {path}") from error
    except CheckpointError:
        raise
    except Exception as error:
        raise CheckpointError(f"unreadable checkpoint {path}: {error}") from error
    if require_finite:
        validate_finite_state(state, source=os.fspath(path))
    return state


def validate_finite_state(
    state: dict[str, np.ndarray], source: str = "checkpoint"
) -> None:
    """Reject state dicts with non-finite float arrays.

    Raises :class:`CheckpointError` naming the first offending key.
    Integer arrays (RNG streams, counters) are ignored.
    """
    for name, value in state.items():
        array = np.asarray(value)
        if np.issubdtype(array.dtype, np.floating) and not np.all(
            np.isfinite(array)
        ):
            raise CheckpointError(
                f"{source}: array {name!r} contains non-finite values"
            )


def save_state(module: Module, path: str | os.PathLike) -> None:
    """Write ``module.state_dict()`` to an ``.npz`` archive atomically."""
    atomic_savez(path, module.state_dict())


def load_state(module: Module, path: str | os.PathLike) -> None:
    """Load an archive written by :func:`save_state` into ``module``.

    Validates the archive against the module: missing, unexpected or
    shape-mismatched keys raise :class:`CheckpointError`.
    """
    state = read_archive(path)
    try:
        module.load_state_dict(state)
    except (KeyError, ValueError) as error:
        raise CheckpointError(
            f"checkpoint {os.fspath(path)} does not match module: {error}"
        ) from error
