"""Weight initialization schemes.

The paper (Algorithm 1, line 2) initializes both the policy and the critic
with *orthogonal* initialization, the standard choice for PPO.  Xavier and
He initializers are provided for the baselines (CoLight's GAT stack, MA2C's
actor-critic heads).
"""

from __future__ import annotations

import numpy as np


def orthogonal(shape: tuple[int, int], gain: float, rng: np.random.Generator) -> np.ndarray:
    """Orthogonal matrix initialization (Saxe et al., 2014).

    For non-square shapes the semi-orthogonal factor from a QR
    decomposition of a Gaussian matrix is used.
    """
    if len(shape) != 2:
        raise ValueError("orthogonal init requires a 2-D shape")
    rows, cols = shape
    flat = rng.normal(size=(max(rows, cols), min(rows, cols)))
    q, r = np.linalg.qr(flat)
    # Sign correction makes the distribution uniform over orthogonal matrices.
    q *= np.sign(np.diag(r))
    if rows < cols:
        q = q.T
    return gain * q[:rows, :cols]


def xavier_uniform(shape: tuple[int, int], gain: float, rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform initialization."""
    fan_in, fan_out = shape
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def he_normal(shape: tuple[int, int], gain: float, rng: np.random.Generator) -> np.ndarray:
    """He/Kaiming normal initialization (for ReLU stacks)."""
    fan_in = shape[0]
    std = gain * np.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=shape)


_SCHEMES = {
    "orthogonal": orthogonal,
    "xavier": xavier_uniform,
    "he": he_normal,
}


def initialize(
    scheme: str,
    shape: tuple[int, int],
    rng: np.random.Generator,
    gain: float = 1.0,
) -> np.ndarray:
    """Dispatch to a named initialization scheme."""
    try:
        fn = _SCHEMES[scheme]
    except KeyError:
        raise ValueError(f"unknown init scheme {scheme!r}; expected one of {sorted(_SCHEMES)}")
    return fn(shape, gain, rng)
