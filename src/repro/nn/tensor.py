"""Reverse-mode automatic differentiation over numpy arrays.

This module is the foundation of :mod:`repro.nn`, the neural-network
substrate used by every learning agent in the repository.  It implements a
small but complete autograd engine: a :class:`Tensor` wraps a numpy array,
records the operations applied to it, and :meth:`Tensor.backward` walks the
recorded graph in reverse topological order accumulating gradients.

The operation set is deliberately scoped to what the PairUpLight models
need — dense layers, LSTM cells, graph attention, softmax policies and the
PPO / A2C / DQN losses — rather than being a general-purpose framework.
All arithmetic supports numpy-style broadcasting; gradients are
"unbroadcast" (summed) back to the operand shapes.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence, Union

import numpy as np

ArrayLike = Union[np.ndarray, float, int, Sequence[float]]


_FLOAT64 = np.dtype(np.float64)

#: Global graph-construction switch; see :class:`no_grad`.
_grad_enabled = True


class no_grad:
    """Context manager disabling autograd graph construction.

    Values are computed exactly as usual, but no parents or backward
    closures are recorded and every op output has
    ``requires_grad=False``.  Use around rollout/inference forwards
    whose outputs are only ever read as ``.data``.  Re-entrant.
    """

    __slots__ = ("_previous",)

    def __enter__(self) -> "no_grad":
        global _grad_enabled
        self._previous = _grad_enabled
        _grad_enabled = False
        return self

    def __exit__(self, *exc_info) -> bool:
        global _grad_enabled
        _grad_enabled = self._previous
        return False


def _as_array(value: ArrayLike) -> np.ndarray:
    """Coerce ``value`` to a float64 numpy array.

    Already-float64 arrays pass through without a copy; python floats
    (the scalar constants sprinkled through every loss expression) take
    a direct construction path.
    """
    if type(value) is np.ndarray:
        if value.dtype is _FLOAT64 or value.dtype == _FLOAT64:
            return value
        return value.astype(np.float64)
    if type(value) is float:
        return np.array(value)
    return np.asarray(value, dtype=np.float64)


def _is_basic_index(key) -> bool:
    """True when ``key`` uses only ints/slices (no fancy index arrays).

    Basic indexing never visits the same element twice, so the gradient
    scatter can use ``+=`` instead of ``np.add.at``.
    """
    if isinstance(key, tuple):
        return all(
            isinstance(k, (int, np.integer, slice)) or k is Ellipsis or k is None
            for k in key
        )
    return isinstance(key, (int, np.integer, slice)) or key is Ellipsis or key is None


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing numpy broadcasting.

    Broadcasting can (a) prepend dimensions and (b) stretch size-1
    dimensions; the corresponding gradient operation sums over the added or
    stretched axes.
    """
    if grad.shape == shape:
        return grad
    # Sum over prepended dimensions.
    extra_dims = grad.ndim - len(shape)
    if extra_dims > 0:
        grad = grad.sum(axis=tuple(range(extra_dims)))
    # Sum over stretched (size-1) dimensions.
    axes = tuple(
        axis for axis, size in enumerate(shape) if size == 1 and grad.shape[axis] != 1
    )
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy array with gradient tracking.

    Parameters
    ----------
    data:
        Array contents; coerced to ``float64``.
    requires_grad:
        Whether gradients should be accumulated into :attr:`grad` during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents")

    def __init__(self, data: ArrayLike, requires_grad: bool = False) -> None:
        self.data = _as_array(data)
        self.requires_grad = bool(requires_grad)
        self.grad: np.ndarray | None = None
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents: tuple[Tensor, ...] = ()

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _from_op(
        data: np.ndarray,
        parents: Iterable["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        # Op outputs are produced by numpy arithmetic on float64 arrays,
        # so skip __init__'s coercion; only 0-d results (numpy scalars)
        # need re-wrapping.
        if type(data) is not np.ndarray:
            data = np.asarray(data, dtype=np.float64)
        out = Tensor.__new__(Tensor)
        out.data = data
        out.grad = None
        if not _grad_enabled:
            requires = False
        elif isinstance(parents, tuple):
            requires = any(p.requires_grad for p in parents)
        else:
            parents = tuple(parents)
            requires = any(p.requires_grad for p in parents)
        out.requires_grad = requires
        if requires:
            out._parents = parents
            out._backward = backward
        else:
            out._parents = ()
            out._backward = None
        return out

    @staticmethod
    def ensure(value: Union["Tensor", ArrayLike]) -> "Tensor":
        """Wrap ``value`` in a constant Tensor unless it already is one."""
        if isinstance(value, Tensor):
            return value
        return Tensor(value)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def numpy(self) -> np.ndarray:
        """Return the underlying array (shared, not copied)."""
        return self.data

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        """Return a new Tensor sharing data but cut from the graph."""
        return Tensor(self.data)

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.data.shape}{flag})"

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = Tensor.ensure(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.data.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad, other.data.shape))

        return Tensor._from_op(out_data, (self, other), backward)

    def __radd__(self, other: ArrayLike) -> "Tensor":
        return self.__add__(other)

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-grad)

        return Tensor._from_op(-self.data, (self,), backward)

    def __sub__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        return self.__add__(Tensor.ensure(other).__neg__())

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return Tensor.ensure(other).__sub__(self)

    def __mul__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = Tensor.ensure(other)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * other.data, self.data.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad * self.data, other.data.shape))

        return Tensor._from_op(out_data, (self, other), backward)

    def __rmul__(self, other: ArrayLike) -> "Tensor":
        return self.__mul__(other)

    def __truediv__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = Tensor.ensure(other)
        out_data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad / other.data, self.data.shape))
            if other.requires_grad:
                other._accumulate(
                    _unbroadcast(-grad * self.data / (other.data**2), other.data.shape)
                )

        return Tensor._from_op(out_data, (self, other), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return Tensor.ensure(other).__truediv__(self)

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("Tensor ** only supports scalar exponents")
        out_data = self.data**exponent

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._from_op(out_data, (self,), backward)

    def __matmul__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = Tensor.ensure(other)
        out_data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                if other.data.ndim == 1:
                    self._accumulate(np.outer(grad, other.data).reshape(self.shape))
                else:
                    g = grad @ np.swapaxes(other.data, -1, -2)
                    self._accumulate(_unbroadcast(g, self.data.shape))
            if other.requires_grad:
                if self.data.ndim == 1:
                    other._accumulate(np.outer(self.data, grad).reshape(other.shape))
                else:
                    g = np.swapaxes(self.data, -1, -2) @ grad
                    other._accumulate(_unbroadcast(g, other.data.shape))

        return Tensor._from_op(out_data, (self, other), backward)

    # ------------------------------------------------------------------
    # Elementwise nonlinearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data)

        return Tensor._from_op(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / self.data)

        return Tensor._from_op(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (1.0 - out_data**2))

        return Tensor._from_op(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        # Numerically stable logistic with a single exp: for x >= 0 this
        # is 1/(1+exp(-x)), for x < 0 it is exp(x)/(1+exp(x)) — the same
        # two branches as the textbook formulation, sharing exp(-|x|).
        e = np.exp(-np.abs(np.clip(self.data, -500, 500)))
        out_data = np.where(self.data >= 0, 1.0 / (1.0 + e), e / (1.0 + e))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data * (1.0 - out_data))

        return Tensor._from_op(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0
        out_data = self.data * mask

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return Tensor._from_op(out_data, (self,), backward)

    def leaky_relu(self, slope: float = 0.01) -> "Tensor":
        mask = self.data > 0
        out_data = np.where(mask, self.data, slope * self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * np.where(mask, 1.0, slope))

        return Tensor._from_op(out_data, (self,), backward)

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)
        out_data = np.abs(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * sign)

        return Tensor._from_op(out_data, (self,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        """Clamp values; gradient is passed through only inside the window."""
        out_data = np.clip(self.data, low, high)
        mask = (self.data >= low) & (self.data <= high)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return Tensor._from_op(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = np.asarray(grad)
            if axis is not None and not keepdims:
                axes = (axis,) if isinstance(axis, int) else axis
                for ax in sorted(a % self.data.ndim for a in axes):
                    g = np.expand_dims(g, ax)
            self._accumulate(np.broadcast_to(g, self.data.shape).copy())

        return Tensor._from_op(np.asarray(out_data), (self,), backward)

    def mean(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = (axis,) if isinstance(axis, int) else axis
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = np.asarray(grad)
            expanded = self.data.max(axis=axis, keepdims=True)
            mask = self.data == expanded
            # Split gradient evenly among tied maxima.
            mask = mask / mask.sum(axis=axis, keepdims=True)
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis % self.data.ndim)
            self._accumulate(np.broadcast_to(g, self.data.shape) * mask)

        return Tensor._from_op(np.asarray(out_data), (self,), backward)

    def minimum(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = Tensor.ensure(other)
        take_self = self.data <= other.data
        out_data = np.where(take_self, self.data, other.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * take_self, self.data.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad * ~take_self, other.data.shape))

        return Tensor._from_op(out_data, (self, other), backward)

    def maximum(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = Tensor.ensure(other)
        take_self = self.data >= other.data
        out_data = np.where(take_self, self.data, other.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * take_self, self.data.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad * ~take_self, other.data.shape))

        return Tensor._from_op(out_data, (self, other), backward)

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        original = self.data.shape

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.reshape(original))

        return Tensor._from_op(out_data, (self,), backward)

    def transpose(self, *axes: int) -> "Tensor":
        axes_tuple = axes if axes else tuple(reversed(range(self.data.ndim)))
        out_data = self.data.transpose(axes_tuple)
        inverse = np.argsort(axes_tuple)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.transpose(inverse))

        return Tensor._from_op(out_data, (self,), backward)

    def __getitem__(self, key) -> "Tensor":
        out_data = self.data[key]
        basic = _is_basic_index(key)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                if basic:
                    # Basic indexing selects unique positions, so a plain
                    # in-place add avoids np.add.at's slow buffered path.
                    full[key] += grad
                else:
                    np.add.at(full, key, grad)
                self._accumulate(full)

        return Tensor._from_op(np.asarray(out_data), (self,), backward)

    # ------------------------------------------------------------------
    # Backward pass
    # ------------------------------------------------------------------
    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            # Copy: the incoming gradient may be shared with other nodes.
            self.grad = np.array(grad, dtype=np.float64)
        else:
            # self.grad is always our private copy — add in place.
            self.grad += grad

    def backward(self, grad: ArrayLike | None = None) -> None:
        """Backpropagate from this tensor through the recorded graph.

        ``grad`` defaults to ones (appropriate for scalar losses).
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor without grad")
        if grad is None:
            grad = np.ones_like(self.data)
        else:
            grad = _as_array(grad)

        order: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited and parent.requires_grad:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)


def concat(tensors: Sequence[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient support."""
    tensors = [Tensor.ensure(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if tensor.requires_grad:
                index = [slice(None)] * grad.ndim
                index[axis] = slice(start, stop)
                tensor._accumulate(grad[tuple(index)])

    return Tensor._from_op(out_data, tensors, backward)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis`` with gradient support."""
    tensors = [Tensor.ensure(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        slices = np.split(grad, len(tensors), axis=axis)
        for tensor, piece in zip(tensors, slices):
            if tensor.requires_grad:
                tensor._accumulate(np.squeeze(piece, axis=axis))

    return Tensor._from_op(out_data, tensors, backward)


def where(condition: ArrayLike, a: Tensor, b: Tensor) -> Tensor:
    """Elementwise select ``a`` where ``condition`` else ``b``."""
    condition = np.asarray(condition, dtype=bool)
    a = Tensor.ensure(a)
    b = Tensor.ensure(b)
    out_data = np.where(condition, a.data, b.data)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(_unbroadcast(grad * condition, a.data.shape))
        if b.requires_grad:
            b._accumulate(_unbroadcast(grad * ~condition, b.data.shape))

    return Tensor._from_op(out_data, (a, b), backward)
