"""Reverse-mode automatic differentiation over numpy arrays.

This module is the foundation of :mod:`repro.nn`, the neural-network
substrate used by every learning agent in the repository.  It implements a
small but complete autograd engine: a :class:`Tensor` wraps a numpy array
and records the operations applied to it on a flat, append-order **tape**;
:meth:`Tensor.backward` replays the tape in reverse, accumulating
gradients.  Because an operand always exists before its consumer, reverse
creation order is a valid reverse topological order, so backward is a
plain list scan — no recursion, no visited sets, no per-call sort.

The operation set is deliberately scoped to what the PairUpLight models
need — dense layers, LSTM cells, graph attention, softmax policies and the
PPO / A2C / DQN losses — rather than being a general-purpose framework.
All arithmetic supports numpy-style broadcasting; gradients are
"unbroadcast" (summed) back to the operand shapes.

Two fused kernels complement the generic op set: :func:`affine`
(``x @ W + b`` as one node) and :func:`lstm_cell` (a full LSTM step —
four gates plus the state update — as two nodes with a hand-derived
backward).  Both are bit-exact with the composed op sequences they
replace, in forward values *and* accumulated gradients.
"""

from __future__ import annotations

import weakref
from typing import Callable, Iterable, Sequence, Union

import numpy as np

ArrayLike = Union[np.ndarray, float, int, Sequence[float]]


_FLOAT64 = np.dtype(np.float64)

#: Global graph-construction switch; see :class:`no_grad`.
_grad_enabled = True

#: Flat gradient tape: weak references to every op node, in creation
#: order.  Weak references let finished graphs (e.g. a previous
#: minibatch's loss) disappear as soon as user code drops them, without
#: any explicit free; :func:`_compact_tape` trims the dead entries.
_TAPE: list = []

#: Tape length that triggers compaction on append.  Grows to twice the
#: live node count so steady-state workloads compact rarely.
_tape_limit = 4096

#: Backward generation counter.  Each :meth:`Tensor.backward` call gets a
#: fresh epoch; gradient accumulation stamps the receiving node, and the
#: tape scan only fires closures stamped with the current epoch.  Nodes
#: belonging to other (stale or concurrent) graphs are skipped, exactly
#: as the old topological walk never visited them.
_backward_epoch = 0


def _compact_tape() -> None:
    """Drop dead weak references; adapt the compaction threshold."""
    global _tape_limit
    _TAPE[:] = [ref for ref in _TAPE if ref() is not None]
    _tape_limit = max(4096, 2 * len(_TAPE))


class no_grad:
    """Context manager disabling autograd graph construction.

    Values are computed exactly as usual, but no parents or backward
    closures are recorded and every op output has
    ``requires_grad=False``.  Use around rollout/inference forwards
    whose outputs are only ever read as ``.data``.  Re-entrant.
    """

    __slots__ = ("_previous",)

    def __enter__(self) -> "no_grad":
        global _grad_enabled
        self._previous = _grad_enabled
        _grad_enabled = False
        return self

    def __exit__(self, *exc_info) -> bool:
        global _grad_enabled
        _grad_enabled = self._previous
        return False


def _as_array(value: ArrayLike) -> np.ndarray:
    """Coerce ``value`` to a float64 numpy array.

    Already-float64 arrays pass through without a copy; python floats
    (the scalar constants sprinkled through every loss expression) take
    a direct construction path.
    """
    if type(value) is np.ndarray:
        if value.dtype is _FLOAT64 or value.dtype == _FLOAT64:
            return value
        return value.astype(np.float64)
    if type(value) is float:
        return np.array(value)
    return np.asarray(value, dtype=np.float64)


def _is_basic_index(key) -> bool:
    """True when ``key`` uses only ints/slices (no fancy index arrays).

    Basic indexing never visits the same element twice, so the gradient
    scatter can use ``+=`` instead of ``np.add.at``.
    """
    if isinstance(key, tuple):
        return all(
            isinstance(k, (int, np.integer, slice)) or k is Ellipsis or k is None
            for k in key
        )
    return isinstance(key, (int, np.integer, slice)) or key is Ellipsis or key is None


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape``, undoing numpy broadcasting.

    Broadcasting can (a) prepend dimensions and (b) stretch size-1
    dimensions; the corresponding gradient operation sums over the added or
    stretched axes.
    """
    if grad.shape == shape:
        return grad
    # Sum over prepended dimensions.
    extra_dims = grad.ndim - len(shape)
    if extra_dims > 0:
        grad = grad.sum(axis=tuple(range(extra_dims)))
    # Sum over stretched (size-1) dimensions.
    axes = tuple(
        axis for axis, size in enumerate(shape) if size == 1 and grad.shape[axis] != 1
    )
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _stable_sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic with a single exp.

    For ``x >= 0`` this is ``1/(1+exp(-x))``, for ``x < 0`` it is
    ``exp(x)/(1+exp(x))`` — the same two branches as the textbook
    formulation, sharing ``exp(-|x|)``.  Shared by :meth:`Tensor.sigmoid`
    and the fused :func:`lstm_cell` so both paths are bit-identical.
    """
    # ``|clip(x, -500, 500)| == min(|x|, 500)``, so the clamp folds into
    # the magnitude pass; every value below is bit-identical to the
    # textbook ``exp(-|clip(x)|)`` formulation.
    t = np.abs(x)
    np.minimum(t, 500.0, out=t)
    np.negative(t, out=t)
    e = np.exp(t, out=t)
    d = 1.0 + e
    pos = np.divide(1.0, d)
    neg = np.divide(e, d, out=d)
    return np.where(x >= 0, pos, neg)


class Tensor:
    """A numpy array with gradient tracking.

    Parameters
    ----------
    data:
        Array contents; coerced to ``float64``.
    requires_grad:
        Whether gradients should be accumulated into :attr:`grad` during
        :meth:`backward`.
    """

    __slots__ = (
        "data",
        "grad",
        "requires_grad",
        "_backward",
        "_parents",
        "_grad_epoch",
        "__weakref__",
    )

    def __init__(self, data: ArrayLike, requires_grad: bool = False) -> None:
        self.data = _as_array(data)
        self.requires_grad = bool(requires_grad)
        self.grad: np.ndarray | None = None
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents: tuple[Tensor, ...] = ()
        self._grad_epoch = 0

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _from_op(
        data: np.ndarray,
        parents: Iterable["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        # Op outputs are produced by numpy arithmetic on float64 arrays,
        # so skip __init__'s coercion; only 0-d results (numpy scalars)
        # need re-wrapping.
        if type(data) is not np.ndarray:
            data = np.asarray(data, dtype=np.float64)
        out = Tensor.__new__(Tensor)
        out.data = data
        out.grad = None
        out._grad_epoch = 0
        if not _grad_enabled:
            requires = False
        elif isinstance(parents, tuple):
            requires = any(p.requires_grad for p in parents)
        else:
            parents = tuple(parents)
            requires = any(p.requires_grad for p in parents)
        out.requires_grad = requires
        if requires:
            out._parents = parents
            out._backward = backward
            _TAPE.append(weakref.ref(out))
            if len(_TAPE) > _tape_limit:
                _compact_tape()
        else:
            out._parents = ()
            out._backward = None
        return out

    @staticmethod
    def ensure(value: Union["Tensor", ArrayLike]) -> "Tensor":
        """Wrap ``value`` in a constant Tensor unless it already is one."""
        if isinstance(value, Tensor):
            return value
        return Tensor(value)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def numpy(self) -> np.ndarray:
        """Return the underlying array (shared, not copied)."""
        return self.data

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        """Return a new Tensor sharing data but cut from the graph."""
        return Tensor(self.data)

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.data.shape}{flag})"

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = Tensor.ensure(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.data.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad, other.data.shape))

        return Tensor._from_op(out_data, (self, other), backward)

    def __radd__(self, other: ArrayLike) -> "Tensor":
        return self.__add__(other)

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-grad)

        return Tensor._from_op(-self.data, (self,), backward)

    def __sub__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        return self.__add__(Tensor.ensure(other).__neg__())

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return Tensor.ensure(other).__sub__(self)

    def __mul__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = Tensor.ensure(other)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * other.data, self.data.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad * self.data, other.data.shape))

        return Tensor._from_op(out_data, (self, other), backward)

    def __rmul__(self, other: ArrayLike) -> "Tensor":
        return self.__mul__(other)

    def __truediv__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = Tensor.ensure(other)
        out_data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad / other.data, self.data.shape))
            if other.requires_grad:
                other._accumulate(
                    _unbroadcast(-grad * self.data / (other.data**2), other.data.shape)
                )

        return Tensor._from_op(out_data, (self, other), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return Tensor.ensure(other).__truediv__(self)

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("Tensor ** only supports scalar exponents")
        out_data = self.data**exponent

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._from_op(out_data, (self,), backward)

    def __matmul__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = Tensor.ensure(other)
        out_data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                if other.data.ndim == 1:
                    self._accumulate(np.outer(grad, other.data).reshape(self.shape))
                else:
                    g = grad @ np.swapaxes(other.data, -1, -2)
                    self._accumulate(_unbroadcast(g, self.data.shape))
            if other.requires_grad:
                if self.data.ndim == 1:
                    other._accumulate(np.outer(self.data, grad).reshape(other.shape))
                else:
                    g = np.swapaxes(self.data, -1, -2) @ grad
                    other._accumulate(_unbroadcast(g, other.data.shape))

        return Tensor._from_op(out_data, (self, other), backward)

    # ------------------------------------------------------------------
    # Elementwise nonlinearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data)

        return Tensor._from_op(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / self.data)

        return Tensor._from_op(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (1.0 - out_data**2))

        return Tensor._from_op(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out_data = _stable_sigmoid(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * out_data * (1.0 - out_data))

        return Tensor._from_op(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0
        out_data = self.data * mask

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return Tensor._from_op(out_data, (self,), backward)

    def leaky_relu(self, slope: float = 0.01) -> "Tensor":
        mask = self.data > 0
        out_data = np.where(mask, self.data, slope * self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * np.where(mask, 1.0, slope))

        return Tensor._from_op(out_data, (self,), backward)

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)
        out_data = np.abs(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * sign)

        return Tensor._from_op(out_data, (self,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        """Clamp values; gradient is passed through only inside the window."""
        out_data = np.clip(self.data, low, high)
        mask = (self.data >= low) & (self.data <= high)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return Tensor._from_op(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = np.asarray(grad)
            if axis is not None and not keepdims:
                axes = (axis,) if isinstance(axis, int) else axis
                for ax in sorted(a % self.data.ndim for a in axes):
                    g = np.expand_dims(g, ax)
            self._accumulate(np.broadcast_to(g, self.data.shape).copy())

        return Tensor._from_op(np.asarray(out_data), (self,), backward)

    def mean(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = (axis,) if isinstance(axis, int) else axis
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = np.asarray(grad)
            expanded = self.data.max(axis=axis, keepdims=True)
            mask = self.data == expanded
            # Split gradient evenly among tied maxima.
            mask = mask / mask.sum(axis=axis, keepdims=True)
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis % self.data.ndim)
            self._accumulate(np.broadcast_to(g, self.data.shape) * mask)

        return Tensor._from_op(np.asarray(out_data), (self,), backward)

    def minimum(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = Tensor.ensure(other)
        take_self = self.data <= other.data
        out_data = np.where(take_self, self.data, other.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * take_self, self.data.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad * ~take_self, other.data.shape))

        return Tensor._from_op(out_data, (self, other), backward)

    def maximum(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = Tensor.ensure(other)
        take_self = self.data >= other.data
        out_data = np.where(take_self, self.data, other.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * take_self, self.data.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad * ~take_self, other.data.shape))

        return Tensor._from_op(out_data, (self, other), backward)

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        original = self.data.shape

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.reshape(original))

        return Tensor._from_op(out_data, (self,), backward)

    def transpose(self, *axes: int) -> "Tensor":
        axes_tuple = axes if axes else tuple(reversed(range(self.data.ndim)))
        out_data = self.data.transpose(axes_tuple)
        inverse = np.argsort(axes_tuple)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.transpose(inverse))

        return Tensor._from_op(out_data, (self,), backward)

    def __getitem__(self, key) -> "Tensor":
        out_data = self.data[key]
        basic = _is_basic_index(key)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                if basic:
                    # Basic indexing selects unique positions, so a plain
                    # in-place add avoids np.add.at's slow buffered path.
                    full[key] += grad
                else:
                    np.add.at(full, key, grad)
                self._accumulate(full)

        return Tensor._from_op(np.asarray(out_data), (self,), backward)

    # ------------------------------------------------------------------
    # Backward pass
    # ------------------------------------------------------------------
    def _accumulate(self, grad: np.ndarray) -> None:
        self._grad_epoch = _backward_epoch
        if self.grad is None:
            # Copy: the incoming gradient may be shared with other nodes.
            self.grad = np.array(grad, dtype=np.float64)
        else:
            # self.grad is always our private copy — add in place.
            self.grad += grad

    def backward(self, grad: ArrayLike | None = None) -> None:
        """Backpropagate from this tensor through the recorded graph.

        ``grad`` defaults to ones (appropriate for scalar losses).

        The pass is a reverse scan of the global tape: seeding this
        tensor stamps it with a fresh epoch, every closure stamps the
        parents it accumulates into, and only nodes carrying the current
        epoch fire.  A consumer always sits later on the tape than its
        operands, so each node's gradient is complete when reached.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor without grad")
        if grad is None:
            grad = np.ones_like(self.data)
        else:
            grad = _as_array(grad)

        global _backward_epoch
        _backward_epoch += 1
        epoch = _backward_epoch
        self._accumulate(grad)
        for ref in reversed(_TAPE):
            node = ref()
            if node is None or node._grad_epoch != epoch:
                continue
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)


def concat(tensors: Sequence[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient support."""
    tensors = [Tensor.ensure(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if tensor.requires_grad:
                index = [slice(None)] * grad.ndim
                index[axis] = slice(start, stop)
                tensor._accumulate(grad[tuple(index)])

    return Tensor._from_op(out_data, tensors, backward)


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis`` with gradient support."""
    tensors = [Tensor.ensure(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        slices = np.split(grad, len(tensors), axis=axis)
        for tensor, piece in zip(tensors, slices):
            if tensor.requires_grad:
                tensor._accumulate(np.squeeze(piece, axis=axis))

    return Tensor._from_op(out_data, tensors, backward)


def where(condition: ArrayLike, a: Tensor, b: Tensor) -> Tensor:
    """Elementwise select ``a`` where ``condition`` else ``b``."""
    condition = np.asarray(condition, dtype=bool)
    a = Tensor.ensure(a)
    b = Tensor.ensure(b)
    out_data = np.where(condition, a.data, b.data)

    def backward(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(_unbroadcast(grad * condition, a.data.shape))
        if b.requires_grad:
            b._accumulate(_unbroadcast(grad * ~condition, b.data.shape))

    return Tensor._from_op(out_data, (a, b), backward)


# ----------------------------------------------------------------------
# Fused kernels
# ----------------------------------------------------------------------
def _ws_buffer(workspace: dict, key: str, shape: tuple[int, ...]) -> np.ndarray:
    """Fetch (or allocate) a float64 scratch array from ``workspace``.

    Buffers are keyed by name and reallocated only when the requested
    shape changes (e.g. a ragged final minibatch); backward closures run
    sequentially and :meth:`Tensor._accumulate` copies on first use, so
    reuse across closures is safe.
    """
    buf = workspace.get(key)
    if buf is None or buf.shape != shape:
        buf = np.empty(shape)
        workspace[key] = buf
    return buf


def affine(
    x: Union[Tensor, ArrayLike],
    weight: Union[Tensor, ArrayLike],
    bias: Union[Tensor, ArrayLike, None] = None,
) -> Tensor:
    """Fused ``x @ weight + bias`` as a single graph node.

    Bit-exact with the composed ``(x @ w) + b`` op pair in both the
    forward values and the gradients accumulated into ``x``, ``weight``
    and ``bias`` — it replays the same numpy expressions the composed
    backward closures would, just without the intermediate matmul node.
    """
    x = Tensor.ensure(x)
    weight = Tensor.ensure(weight)
    out_data = x.data @ weight.data
    if bias is not None:
        bias = Tensor.ensure(bias)
        out_data = out_data + bias.data
        parents: tuple[Tensor, ...] = (x, weight, bias)
    else:
        parents = (x, weight)

    def backward(grad: np.ndarray) -> None:
        if bias is not None and bias.requires_grad:
            bias._accumulate(_unbroadcast(grad, bias.data.shape))
        if x.requires_grad:
            if weight.data.ndim == 1:
                x._accumulate(np.outer(grad, weight.data).reshape(x.shape))
            else:
                g = grad @ np.swapaxes(weight.data, -1, -2)
                x._accumulate(_unbroadcast(g, x.data.shape))
        if weight.requires_grad:
            if x.data.ndim == 1:
                weight._accumulate(np.outer(x.data, grad).reshape(weight.shape))
            else:
                g = np.swapaxes(x.data, -1, -2) @ grad
                weight._accumulate(_unbroadcast(g, weight.data.shape))

    return Tensor._from_op(out_data, parents, backward)


def lstm_cell(
    x: Union[Tensor, ArrayLike],
    h_prev: Union[Tensor, ArrayLike],
    c_prev: Union[Tensor, ArrayLike],
    weight: Union[Tensor, ArrayLike],
    bias: Union[Tensor, ArrayLike],
    workspace: dict | None = None,
) -> tuple[Tensor, Tensor]:
    """Fused LSTM step: four gates plus the state update in one kernel.

    Computes ``[i, f, g, o] = [x, h_prev] @ weight + bias`` (gate layout
    matching :class:`repro.nn.lstm.LSTMCell`), then
    ``c = sigmoid(f) * c_prev + sigmoid(i) * tanh(g)`` and
    ``h = sigmoid(o) * tanh(c)``, returning ``(h_new, c_new)``.

    The graph records two nodes instead of ~15: ``c_new`` carries the
    hand-derived backward over all five operands, and ``h_new`` is a
    lightweight tap whose closure stashes the incoming ``dh`` (tagged
    with the current backward epoch, so a stale stash from an earlier
    pass is never reused) and routes the ``dh * o * (1 - tanh(c)^2)``
    term into ``c_new``.  ``h_new`` is created after ``c_new``, so the
    reverse tape scan always fires the tap first.  Every floating-point
    expression mirrors the grouping of the composed op chain, making the
    fused path bit-exact in forwards *and* accumulated gradients.

    ``workspace`` (a plain dict, e.g. one per ``LSTMCell``) enables
    buffer reuse across steps/minibatches for the backward temporaries;
    omit it to allocate per call.
    """
    x = Tensor.ensure(x)
    h_prev = Tensor.ensure(h_prev)
    c_prev = Tensor.ensure(c_prev)
    weight = Tensor.ensure(weight)
    bias = Tensor.ensure(bias)
    if x.data.ndim != 2:
        raise ValueError("lstm_cell expects (batch, features) inputs")
    in_size = x.data.shape[-1]
    hs = c_prev.data.shape[-1]
    ws = workspace if workspace is not None else {}

    xh = np.concatenate([x.data, h_prev.data], axis=-1)
    gates = _ws_buffer(ws, "gates", (xh.shape[0], 4 * hs))
    np.matmul(xh, weight.data, out=gates)
    gates += bias.data
    # Activations are captured by the closures, so they must be fresh
    # arrays; only the pre-activation buffer above is recycled.
    # i and f are adjacent in the gate layout; one sigmoid call over the
    # joint slice is elementwise, hence bit-identical to two calls.
    if_gates = _stable_sigmoid(gates[:, 0 * hs : 2 * hs])
    i_gate = if_gates[:, :hs]
    f_gate = if_gates[:, hs:]
    g_gate = np.tanh(gates[:, 2 * hs : 3 * hs])
    o_gate = _stable_sigmoid(gates[:, 3 * hs : 4 * hs])

    c_data = f_gate * c_prev.data + i_gate * g_gate
    tanh_c = np.tanh(c_data)
    h_data = o_gate * tanh_c

    # (epoch, dh) from the tap node; consulted by cell_backward.
    stash: list = [0, None]

    def cell_backward(dc: np.ndarray) -> None:
        dh = stash[1] if stash[0] == _backward_epoch else None
        dpre = _ws_buffer(ws, "dpre", (dc.shape[0], 4 * hs))
        s = _ws_buffer(ws, "scratch", dc.shape)
        di = dpre[:, 0 * hs : 1 * hs]
        df = dpre[:, 1 * hs : 2 * hs]
        dg = dpre[:, 2 * hs : 3 * hs]
        do = dpre[:, 3 * hs : 4 * hs]
        np.multiply(dc, g_gate, out=di)
        di *= i_gate
        np.subtract(1.0, i_gate, out=s)
        di *= s
        np.multiply(dc, c_prev.data, out=df)
        df *= f_gate
        np.subtract(1.0, f_gate, out=s)
        df *= s
        np.multiply(dc, i_gate, out=dg)
        np.multiply(g_gate, g_gate, out=s)
        np.subtract(1.0, s, out=s)
        dg *= s
        if dh is None:
            do[:] = 0.0
        else:
            np.multiply(dh, tanh_c, out=do)
            do *= o_gate
            np.subtract(1.0, o_gate, out=s)
            do *= s
        # The composed path scatters each gate grad into a zeroed array
        # (``full[sl] += g``), which flushes negative zeros; match it.
        dpre += 0.0
        if weight.requires_grad:
            dw = _ws_buffer(ws, "dw", weight.data.shape)
            np.matmul(xh.T, dpre, out=dw)
            weight._accumulate(dw)
        if bias.requires_grad:
            db = _ws_buffer(ws, "db", bias.data.shape)
            np.sum(dpre, axis=0, out=db)
            bias._accumulate(db)
        if x.requires_grad or h_prev.requires_grad:
            dxh = _ws_buffer(ws, "dxh", xh.shape)
            np.matmul(dpre, weight.data.T, out=dxh)
            if x.requires_grad:
                x._accumulate(dxh[:, :in_size])
            if h_prev.requires_grad:
                h_prev._accumulate(dxh[:, in_size:])
        if c_prev.requires_grad:
            np.multiply(dc, f_gate, out=s)
            c_prev._accumulate(s)

    c_new = Tensor._from_op(c_data, (x, h_prev, c_prev, weight, bias), cell_backward)

    def tap_backward(dh: np.ndarray) -> None:
        stash[0] = _backward_epoch
        stash[1] = dh
        if c_new.requires_grad:
            t = _ws_buffer(ws, "tap", dh.shape)
            u = _ws_buffer(ws, "tap2", dh.shape)
            np.multiply(dh, o_gate, out=t)
            np.multiply(tanh_c, tanh_c, out=u)
            np.subtract(1.0, u, out=u)
            t *= u
            c_new._accumulate(t)

    h_new = Tensor._from_op(h_data, (c_new,), tap_backward)
    return h_new, c_new


def lstm_trunk(
    x: Union[Tensor, ArrayLike],
    h_prev: Union[Tensor, ArrayLike],
    c_prev: Union[Tensor, ArrayLike],
    enc_weight: Union[Tensor, ArrayLike],
    enc_bias: Union[Tensor, ArrayLike],
    weight: Union[Tensor, ArrayLike],
    bias: Union[Tensor, ArrayLike],
    workspace: dict | None = None,
) -> tuple[Tensor, Tensor]:
    """Fused recurrent trunk step: ``tanh(x @ We + be)`` into an LSTM cell.

    One graph node (plus the ``h`` tap) per step instead of the four
    that :func:`affine` + ``tanh`` + :func:`lstm_cell` would record, or
    the ~18 of the fully composed chain.  The backward replays exactly
    the numpy expressions the composed closures would run — dense
    backward included — so the trunk is bit-exact with both in forwards
    and accumulated gradients.  See :func:`lstm_cell` for the stash/tap
    mechanics; this op shares them verbatim.
    """
    x = Tensor.ensure(x)
    h_prev = Tensor.ensure(h_prev)
    c_prev = Tensor.ensure(c_prev)
    enc_weight = Tensor.ensure(enc_weight)
    enc_bias = Tensor.ensure(enc_bias)
    weight = Tensor.ensure(weight)
    bias = Tensor.ensure(bias)
    if x.data.ndim != 2:
        raise ValueError("lstm_trunk expects (batch, features) inputs")
    hs = c_prev.data.shape[-1]
    enc_out = enc_weight.data.shape[-1]
    ws = workspace if workspace is not None else {}

    pre = _ws_buffer(ws, "enc_pre", (x.data.shape[0], enc_out))
    np.matmul(x.data, enc_weight.data, out=pre)
    pre += enc_bias.data
    # Fresh arrays below are captured by the closures (see lstm_cell).
    encoded = np.tanh(pre)
    xh = np.concatenate([encoded, h_prev.data], axis=-1)
    gates = _ws_buffer(ws, "gates", (xh.shape[0], 4 * hs))
    np.matmul(xh, weight.data, out=gates)
    gates += bias.data
    if_gates = _stable_sigmoid(gates[:, 0 * hs : 2 * hs])
    i_gate = if_gates[:, :hs]
    f_gate = if_gates[:, hs:]
    g_gate = np.tanh(gates[:, 2 * hs : 3 * hs])
    o_gate = _stable_sigmoid(gates[:, 3 * hs : 4 * hs])

    c_data = f_gate * c_prev.data + i_gate * g_gate
    tanh_c = np.tanh(c_data)
    h_data = o_gate * tanh_c

    stash: list = [0, None]

    def trunk_backward(dc: np.ndarray) -> None:
        dh = stash[1] if stash[0] == _backward_epoch else None
        dpre = _ws_buffer(ws, "dpre", (dc.shape[0], 4 * hs))
        s = _ws_buffer(ws, "scratch", dc.shape)
        di = dpre[:, 0 * hs : 1 * hs]
        df = dpre[:, 1 * hs : 2 * hs]
        dg = dpre[:, 2 * hs : 3 * hs]
        do = dpre[:, 3 * hs : 4 * hs]
        np.multiply(dc, g_gate, out=di)
        di *= i_gate
        np.subtract(1.0, i_gate, out=s)
        di *= s
        np.multiply(dc, c_prev.data, out=df)
        df *= f_gate
        np.subtract(1.0, f_gate, out=s)
        df *= s
        np.multiply(dc, i_gate, out=dg)
        np.multiply(g_gate, g_gate, out=s)
        np.subtract(1.0, s, out=s)
        dg *= s
        if dh is None:
            do[:] = 0.0
        else:
            np.multiply(dh, tanh_c, out=do)
            do *= o_gate
            np.subtract(1.0, o_gate, out=s)
            do *= s
        dpre += 0.0
        if weight.requires_grad:
            dw = _ws_buffer(ws, "dw", weight.data.shape)
            np.matmul(xh.T, dpre, out=dw)
            weight._accumulate(dw)
        if bias.requires_grad:
            db = _ws_buffer(ws, "db", bias.data.shape)
            np.sum(dpre, axis=0, out=db)
            bias._accumulate(db)
        dxh = _ws_buffer(ws, "dxh", xh.shape)
        np.matmul(dpre, weight.data.T, out=dxh)
        if h_prev.requires_grad:
            h_prev._accumulate(dxh[:, enc_out:])
        if c_prev.requires_grad:
            np.multiply(dc, f_gate, out=s)
            c_prev._accumulate(s)
        # Encoder tail: replay the composed tanh + affine backwards.
        de = dxh[:, :enc_out]
        dpre_enc = _ws_buffer(ws, "dpre_enc", de.shape)
        np.multiply(encoded, encoded, out=dpre_enc)
        np.subtract(1.0, dpre_enc, out=dpre_enc)
        dpre_enc *= de
        if enc_bias.requires_grad:
            dbe = _ws_buffer(ws, "dbe", enc_bias.data.shape)
            np.sum(dpre_enc, axis=0, out=dbe)
            enc_bias._accumulate(dbe)
        if x.requires_grad:
            dx = _ws_buffer(ws, "dx", x.data.shape)
            np.matmul(dpre_enc, enc_weight.data.T, out=dx)
            x._accumulate(dx)
        if enc_weight.requires_grad:
            dwe = _ws_buffer(ws, "dwe", enc_weight.data.shape)
            np.matmul(x.data.T, dpre_enc, out=dwe)
            enc_weight._accumulate(dwe)

    c_new = Tensor._from_op(
        c_data,
        (x, h_prev, c_prev, enc_weight, enc_bias, weight, bias),
        trunk_backward,
    )

    def tap_backward(dh: np.ndarray) -> None:
        stash[0] = _backward_epoch
        stash[1] = dh
        if c_new.requires_grad:
            t = _ws_buffer(ws, "tap", dh.shape)
            u = _ws_buffer(ws, "tap2", dh.shape)
            np.multiply(dh, o_gate, out=t)
            np.multiply(tanh_c, tanh_c, out=u)
            np.subtract(1.0, u, out=u)
            t *= u
            c_new._accumulate(t)

    h_new = Tensor._from_op(h_data, (c_new,), tap_backward)
    return h_new, c_new
