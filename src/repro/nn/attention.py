"""Graph attention layer (used by the CoLight baseline).

CoLight (Wei et al., 2019) embeds each intersection's observation and then
applies multi-head scaled dot-product attention over the intersection's
neighbourhood (itself + adjacent intersections) to produce a cooperation-
aware representation.  This module implements that neighbourhood attention
with masking so that edge intersections, which have fewer neighbours, are
handled uniformly.
"""

from __future__ import annotations

import numpy as np

from repro.nn.linear import Linear
from repro.nn.module import Module
from repro.nn.tensor import Tensor, concat


class GraphAttention(Module):
    """Multi-head attention of each node over its (masked) neighbourhood.

    Parameters
    ----------
    embed_dim:
        Dimension of node embeddings (input and output).
    num_heads:
        Number of attention heads; ``embed_dim`` must divide evenly.
    rng:
        Random generator for weight init.
    """

    def __init__(self, embed_dim: int, num_heads: int, rng: np.random.Generator) -> None:
        super().__init__()
        if embed_dim % num_heads != 0:
            raise ValueError("embed_dim must be divisible by num_heads")
        self.embed_dim = embed_dim
        self.num_heads = num_heads
        self.head_dim = embed_dim // num_heads
        self.query = Linear(embed_dim, embed_dim, rng, gain=1.0)
        self.key = Linear(embed_dim, embed_dim, rng, gain=1.0)
        self.value = Linear(embed_dim, embed_dim, rng, gain=1.0)
        self.output = Linear(embed_dim, embed_dim, rng, gain=1.0)

    def forward(
        self,
        nodes: Tensor,
        neighbours: Tensor,
        mask: np.ndarray,
    ) -> Tensor:
        """Attend each node over its neighbourhood.

        Parameters
        ----------
        nodes:
            ``(n, embed_dim)`` embeddings of the focal nodes.
        neighbours:
            ``(n, k, embed_dim)`` embeddings of up to ``k`` neighbourhood
            members per node (conventionally including the node itself in
            slot 0).
        mask:
            ``(n, k)`` boolean array; ``False`` marks padding slots.

        Returns
        -------
        ``(n, embed_dim)`` attended representations.
        """
        nodes = Tensor.ensure(nodes)
        neighbours = Tensor.ensure(neighbours)
        mask = np.asarray(mask, dtype=bool)
        n, k, d = neighbours.shape
        if d != self.embed_dim:
            raise ValueError(f"expected embed dim {self.embed_dim}, got {d}")
        if mask.shape != (n, k):
            raise ValueError(f"mask shape {mask.shape} != {(n, k)}")
        if not mask.any(axis=1).all():
            raise ValueError("every node needs at least one unmasked neighbour")

        q = self.query(nodes)  # (n, d)
        k_proj = self.key(neighbours.reshape(n * k, d)).reshape(n, k, d)
        v_proj = self.value(neighbours.reshape(n * k, d)).reshape(n, k, d)

        head_outputs = []
        scale = 1.0 / np.sqrt(self.head_dim)
        penalty = np.where(mask, 0.0, -1e9)
        for head in range(self.num_heads):
            lo, hi = head * self.head_dim, (head + 1) * self.head_dim
            q_h = q[:, lo:hi].reshape(n, 1, self.head_dim)  # (n, 1, hd)
            k_h = k_proj[:, :, lo:hi]  # (n, k, hd)
            v_h = v_proj[:, :, lo:hi]  # (n, k, hd)
            scores = (q_h * k_h).sum(axis=-1) * scale + penalty  # (n, k)
            shifted = scores - Tensor(scores.data.max(axis=-1, keepdims=True))
            weights = shifted.exp()
            weights = weights / weights.sum(axis=-1, keepdims=True)
            attended = (weights.reshape(n, k, 1) * v_h).sum(axis=1)  # (n, hd)
            head_outputs.append(attended)
        merged = concat(head_outputs, axis=-1)
        return self.output(merged).relu()
