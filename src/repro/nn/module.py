"""Module / Parameter abstractions for :mod:`repro.nn`.

Mirrors the familiar ``torch.nn.Module`` contract at the scale this project
needs: parameter registration through attribute assignment, recursive
``parameters()`` / ``state_dict()`` traversal, and ``zero_grad``.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.nn.tensor import Tensor


class Parameter(Tensor):
    """A :class:`Tensor` that is always trainable."""

    def __init__(self, data) -> None:
        super().__init__(data, requires_grad=True)


class Module:
    """Base class for neural-network components.

    Subclasses assign :class:`Parameter` and :class:`Module` instances as
    attributes; they are discovered automatically for optimization and
    serialization.
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", {})
        object.__setattr__(self, "_modules", {})

    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def parameters(self) -> Iterator[Parameter]:
        """Yield all parameters of this module and its children."""
        for param in self._parameters.values():
            yield param
        for module in self._modules.values():
            yield from module.parameters()

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield f"{prefix}{name}", param
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def num_parameters(self) -> int:
        """Total scalar parameter count."""
        return sum(p.size for p in self.parameters())

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy of every parameter array keyed by dotted path."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load parameter arrays produced by :meth:`state_dict`.

        All-or-nothing: every key and shape is validated before the
        first parameter is assigned, so a mismatched state dict can
        never leave the module half-loaded.
        """
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)} "
                f"unexpected={sorted(unexpected)}"
            )
        staged: dict[str, np.ndarray] = {}
        for name, param in own.items():
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for {name}: "
                    f"expected {param.data.shape}, got {value.shape}"
                )
            staged[name] = value
        for name, param in own.items():
            param.data = staged[name].copy()

    def copy_from(self, other: "Module") -> None:
        """Hard-copy parameters from a structurally identical module."""
        self.load_state_dict(other.state_dict())

    def soft_update_from(self, other: "Module", tau: float) -> None:
        """Polyak-average parameters from ``other``: ``p = tau*q + (1-tau)*p``."""
        own = dict(self.named_parameters())
        for name, source in other.named_parameters():
            own[name].data = tau * source.data + (1.0 - tau) * own[name].data

    # ------------------------------------------------------------------
    # Call protocol
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class Sequential(Module):
    """Apply child modules in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self.layers = list(modules)
        for index, module in enumerate(modules):
            setattr(self, f"layer{index}", module)

    def forward(self, x):
        for module in self.layers:
            x = module(x)
        return x
