"""LSTM cell used by the PairUpLight actor and critic.

Both networks in Fig. 5 of the paper carry a recurrent hidden state
(`h_{t,pi}` for the actor, `h_{t,V}` for the critic); this module provides
the single-step cell those networks need.  Sequences are unrolled by the
caller (the PPO update re-runs the cell over stored rollout steps), so only
a step interface is exposed.
"""

from __future__ import annotations

import numpy as np

from repro.nn.initializers import initialize
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor, concat, lstm_cell


class LSTMCell(Module):
    """Standard LSTM cell with a fused gate projection.

    Gates are computed as ``[i, f, g, o] = [x, h] @ W + b`` with the forget
    bias initialized to 1.0 (standard trick for gradient flow early in
    training).

    With ``fused=True`` (the default, mirroring the engine's ``fast_path``
    precedent) the step runs through the single-kernel
    :func:`repro.nn.tensor.lstm_cell` op — two graph nodes and a
    hand-derived backward with per-cell buffer reuse — instead of the
    ~15-node composed op chain.  Both paths are bit-exact in forward
    values and accumulated gradients; ``fused=False`` keeps the composed
    chain for equivalence testing and ablations.
    """

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        rng: np.random.Generator,
        init: str = "orthogonal",
        fused: bool = True,
    ) -> None:
        super().__init__()
        if input_size <= 0 or hidden_size <= 0:
            raise ValueError("LSTMCell sizes must be positive")
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.fused = bool(fused)
        self._workspace: dict = {}
        self.weight = Parameter(
            initialize(init, (input_size + hidden_size, 4 * hidden_size), rng, gain=1.0)
        )
        bias = np.zeros(4 * hidden_size)
        bias[hidden_size : 2 * hidden_size] = 1.0  # forget-gate bias
        self.bias = Parameter(bias)

    def initial_state(self, batch: int = 1) -> tuple[np.ndarray, np.ndarray]:
        """Zero ``(h, c)`` arrays for a fresh episode (Algorithm 1, line 4)."""
        return (
            np.zeros((batch, self.hidden_size)),
            np.zeros((batch, self.hidden_size)),
        )

    def forward(
        self,
        x: Tensor,
        state: tuple[Tensor | np.ndarray, Tensor | np.ndarray],
    ) -> tuple[Tensor, tuple[Tensor, Tensor]]:
        """One recurrent step.

        Parameters
        ----------
        x:
            ``(batch, input_size)`` input.
        state:
            ``(h, c)`` pair, each ``(batch, hidden_size)``.

        Returns
        -------
        ``(h_new, (h_new, c_new))`` — hidden output plus the new state.
        """
        x = Tensor.ensure(x)
        h_prev = Tensor.ensure(state[0])
        c_prev = Tensor.ensure(state[1])
        if x.shape[-1] != self.input_size:
            raise ValueError(f"LSTMCell expected input {self.input_size}, got {x.shape[-1]}")

        if self.fused:
            h_new, c_new = lstm_cell(
                x, h_prev, c_prev, self.weight, self.bias, workspace=self._workspace
            )
            return h_new, (h_new, c_new)

        gates = concat([x, h_prev], axis=-1) @ self.weight + self.bias
        hs = self.hidden_size
        i_gate = gates[:, 0 * hs : 1 * hs].sigmoid()
        f_gate = gates[:, 1 * hs : 2 * hs].sigmoid()
        g_gate = gates[:, 2 * hs : 3 * hs].tanh()
        o_gate = gates[:, 3 * hs : 4 * hs].sigmoid()

        c_new = f_gate * c_prev + i_gate * g_gate
        h_new = o_gate * c_new.tanh()
        return h_new, (h_new, c_new)
