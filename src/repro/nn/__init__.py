"""Neural-network substrate: numpy autograd, layers, and optimizers.

This package replaces PyTorch for the reproduction (see DESIGN.md section
2).  Public surface:

* :class:`~repro.nn.tensor.Tensor` — autograd array.
* :class:`~repro.nn.module.Module` / :class:`~repro.nn.module.Parameter`.
* Layers — :class:`~repro.nn.linear.Linear`, :class:`~repro.nn.linear.MLP`,
  :class:`~repro.nn.lstm.LSTMCell`,
  :class:`~repro.nn.attention.GraphAttention`.
* Optimizers — :class:`~repro.nn.optim.Adam`, :class:`~repro.nn.optim.SGD`,
  :class:`~repro.nn.optim.RMSProp`.
* :mod:`~repro.nn.functional` — softmax / losses / sampling helpers.
"""

from repro.nn import functional
from repro.nn.attention import GraphAttention
from repro.nn.initializers import initialize
from repro.nn.linear import MLP, Linear, ReLU, Sigmoid, Tanh
from repro.nn.lstm import LSTMCell
from repro.nn.module import Module, Parameter, Sequential
from repro.nn.optim import SGD, Adam, Optimizer, RMSProp, clip_grad_norm
from repro.nn.serialization import (
    atomic_savez,
    load_state,
    read_archive,
    save_state,
    validate_finite_state,
)
from repro.nn.tensor import Tensor, affine, concat, lstm_cell, lstm_trunk, no_grad, stack, where

__all__ = [
    "Adam",
    "GraphAttention",
    "LSTMCell",
    "Linear",
    "MLP",
    "Module",
    "Optimizer",
    "Parameter",
    "RMSProp",
    "ReLU",
    "SGD",
    "Sequential",
    "Sigmoid",
    "Tanh",
    "Tensor",
    "affine",
    "atomic_savez",
    "clip_grad_norm",
    "concat",
    "functional",
    "initialize",
    "load_state",
    "lstm_cell",
    "lstm_trunk",
    "no_grad",
    "read_archive",
    "save_state",
    "stack",
    "validate_finite_state",
    "where",
]
