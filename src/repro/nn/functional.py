"""Composite differentiable functions built on :mod:`repro.nn.tensor`.

These are the standard building blocks of policy-gradient and value-based
losses: stable softmax / log-softmax, categorical sampling helpers, entropy,
and the usual regression losses.
"""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor, affine, lstm_cell, lstm_trunk

__all__ = [
    "affine",
    "categorical_sample",
    "entropy",
    "gather",
    "huber_loss",
    "log_softmax",
    "lstm_cell",
    "lstm_trunk",
    "mse_loss",
    "softmax",
]


def softmax(logits: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = logits - Tensor(logits.data.max(axis=axis, keepdims=True))
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(logits: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    shifted = logits - Tensor(logits.data.max(axis=axis, keepdims=True))
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def entropy(probs: Tensor, axis: int = -1, eps: float = 1e-12) -> Tensor:
    """Shannon entropy of a probability distribution (Eq. 3 of the paper)."""
    clamped = probs.maximum(Tensor(np.full_like(probs.data, eps)))
    return -(probs * clamped.log()).sum(axis=axis)


def gather(tensor: Tensor, indices: np.ndarray, axis: int = -1) -> Tensor:
    """Pick one element along the last axis: ``out[...] = t[..., indices[...]]``.

    ``indices`` must match the leading shape of ``tensor``; only the
    last-axis case is supported, which is what categorical
    log-probability extraction needs (2-D per-step batches or 3-D
    stacked ``(horizon, batch, actions)`` sequences alike).
    """
    if axis not in (-1, tensor.ndim - 1):
        raise ValueError("gather only supports the last axis")
    indices = np.asarray(indices, dtype=np.int64)
    leading = np.indices(tensor.shape[:-1])
    return tensor[(*leading, indices)]


def mse_loss(prediction: Tensor, target: Tensor | np.ndarray) -> Tensor:
    """Mean squared error (used for the critic loss, Eq. 2)."""
    target = Tensor.ensure(target).detach()
    diff = prediction - target
    return (diff * diff).mean()


def huber_loss(prediction: Tensor, target: Tensor | np.ndarray, delta: float = 1.0) -> Tensor:
    """Huber loss (used for DQN TD-error regression)."""
    target = Tensor.ensure(target).detach()
    diff = (prediction - target).abs()
    quadratic = diff.minimum(Tensor(np.full_like(diff.data, delta)))
    linear = diff - quadratic
    return (quadratic * quadratic * 0.5 + linear * delta).mean()


def categorical_sample(probs: np.ndarray, rng: np.random.Generator) -> int:
    """Sample an index from a 1-D probability vector."""
    probs = np.asarray(probs, dtype=np.float64)
    total = probs.sum()
    if not np.isfinite(total) or total <= 0:
        raise ValueError("probabilities must be finite and sum to a positive value")
    return int(rng.choice(len(probs), p=probs / total))
