"""Trace spans layered on :class:`repro.perf.timers.PhaseTimers`.

The perf timers already bracket the hot phases of a training run
(``forward`` / ``env_step`` / ``update`` …) but only keep totals.  A
:class:`SpanRecorder` attaches to a timer registry's ``span_sink`` hook
and captures every individual section as a ``(name, start, duration)``
span, exportable in Chrome trace-event format (load it in
``chrome://tracing`` or Perfetto) — so the same instrumentation that
feeds the perf gate becomes a timeline.

Spans record wall-clock only; attaching a recorder never touches any
RNG stream.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.perf.timers import PhaseTimers

#: Default filename inside a run directory.
TRACE_FILENAME = "trace.json"


@dataclass(frozen=True)
class Span:
    """One timed section occurrence."""

    name: str
    start_s: float
    duration_s: float


class SpanRecorder:
    """Collects individual timer sections as exportable trace spans."""

    def __init__(self, max_spans: int = 100_000) -> None:
        if max_spans <= 0:
            raise ConfigError("max_spans must be positive")
        self.max_spans = max_spans
        self.spans: list[Span] = []
        self.dropped = 0
        self._timers: PhaseTimers | None = None
        # Bound once: ``self.record`` creates a new bound-method object
        # on every access, so identity checks need a stable reference.
        self._sink = self.record

    # ------------------------------------------------------------------
    def attach(self, timers: PhaseTimers) -> None:
        """Start receiving spans from ``timers`` (and enable them)."""
        if timers.span_sink is not None and timers.span_sink is not self._sink:
            raise ConfigError("timers already have a span sink attached")
        timers.span_sink = self._sink
        timers.enable()
        self._timers = timers

    def detach(self) -> None:
        """Stop receiving spans (leaves the timers enabled)."""
        if self._timers is not None and self._timers.span_sink is self._sink:
            self._timers.span_sink = None
        self._timers = None

    def record(self, name: str, start_s: float, duration_s: float) -> None:
        """Sink callback invoked by the timers at section exit."""
        if len(self.spans) >= self.max_spans:
            self.dropped += 1
            return
        self.spans.append(Span(name, start_s, duration_s))

    # ------------------------------------------------------------------
    def export_chrome_trace(self, path: str | os.PathLike) -> str:
        """Write spans in Chrome trace-event format (complete 'X' events)."""
        path = os.fspath(path)
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        events = [
            {
                "name": span.name,
                "ph": "X",
                "ts": span.start_s * 1e6,
                "dur": span.duration_s * 1e6,
                "pid": 0,
                "tid": 0,
            }
            for span in self.spans
        ]
        payload = {"traceEvents": events, "displayTimeUnit": "ms"}
        if self.dropped:
            payload["droppedSpans"] = self.dropped
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        return path

    def totals(self) -> dict[str, float]:
        """Accumulated seconds per section (sanity check vs the timers)."""
        totals: dict[str, float] = {}
        for span in self.spans:
            totals[span.name] = totals.get(span.name, 0.0) + span.duration_s
        return totals
