"""Structured telemetry: event logs, manifests, metrics and trace spans.

A run directory produced by this subsystem is a complete, append-only
record of one training run:

* ``events.jsonl`` — schema-versioned JSONL event stream
  (:class:`~repro.obs.events.EventLog`): episode begin/end, update
  stats, checkpoint writes, fault activations, NaN rollbacks, teleports.
* ``manifest.json`` — :class:`~repro.obs.manifest.RunManifest`: config,
  seed, git SHA, platform and package versions at run start.
* ``metrics.json`` — final :class:`~repro.obs.metrics.MetricRegistry`
  snapshot (counters / gauges / histograms).
* ``trace.json`` — optional Chrome-trace spans exported from the
  :class:`repro.perf.timers.PhaseTimers` sections.

The whole layer is **opt-in** (``telemetry=None`` everywhere), adds no
overhead when disabled, and never draws from any RNG stream — training
with telemetry on is bit-exact with telemetry off.  ``python -m repro
obs report <dir>`` re-renders the training curve from the persisted
events without re-simulating anything.
"""

from repro.obs.events import SCHEMA_VERSION, EventLog, read_events
from repro.obs.manifest import RunManifest
from repro.obs.metrics import MetricRegistry
from repro.obs.report import RunReport, load_run, render_report, tail_events
from repro.obs.spans import SpanRecorder
from repro.obs.telemetry import Telemetry

__all__ = [
    "SCHEMA_VERSION",
    "EventLog",
    "MetricRegistry",
    "RunManifest",
    "RunReport",
    "SpanRecorder",
    "Telemetry",
    "load_run",
    "read_events",
    "render_report",
    "tail_events",
]
