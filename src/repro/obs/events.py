"""Schema-versioned JSONL event log with buffered, torn-tail-safe writes.

Every event is one JSON object per line::

    {"schema": 1, "seq": 7, "wall": 1722950000.123, "type": "episode_end",
     "data": {"episode": 3, "avg_wait": 12.5, ...}}

Writes are buffered in memory and flushed as a **single append** (one
``write`` on an ``O_APPEND`` descriptor followed by ``fsync``), so a
crash can at worst truncate the final line; it can never interleave or
corrupt earlier events.  :func:`read_events` tolerates such a torn tail
by skipping a trailing partial line, which makes ``obs tail`` safe to
run against a live log.
"""

from __future__ import annotations

import json
import os
import time

from repro.errors import ConfigError

#: Bumped when the event layout changes incompatibly.
SCHEMA_VERSION = 1

#: Default filename inside a run directory.
EVENTS_FILENAME = "events.jsonl"

#: Keys reserved by the envelope; event payloads live under ``data``.
ENVELOPE_KEYS = ("schema", "seq", "wall", "type", "data")


class EventLog:
    """Append-only JSONL event writer for one run.

    Parameters
    ----------
    path:
        Target ``.jsonl`` file (parent directories are created).
    flush_every:
        Buffered events are written out every ``flush_every`` emissions
        (and always on :meth:`flush` / :meth:`close`).
    """

    def __init__(self, path: str | os.PathLike, flush_every: int = 64) -> None:
        if flush_every <= 0:
            raise ConfigError("flush_every must be positive")
        self.path = os.fspath(path)
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        self.flush_every = flush_every
        self._seq = 0
        self._buffer: list[str] = []
        self._closed = False

    # ------------------------------------------------------------------
    def emit(self, event_type: str, **data) -> dict:
        """Record one event; returns the envelope that will be written."""
        if self._closed:
            raise ConfigError("EventLog is closed")
        if not event_type:
            raise ConfigError("event type must be non-empty")
        envelope = {
            "schema": SCHEMA_VERSION,
            "seq": self._seq,
            "wall": time.time(),
            "type": str(event_type),
            "data": data,
        }
        self._seq += 1
        self._buffer.append(json.dumps(envelope, sort_keys=True, default=_jsonify))
        if len(self._buffer) >= self.flush_every:
            self.flush()
        return envelope

    def flush(self) -> None:
        """Append all buffered events in one write, then fsync."""
        if not self._buffer:
            return
        blob = ("\n".join(self._buffer) + "\n").encode("utf-8")
        self._buffer.clear()
        fd = os.open(self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            os.write(fd, blob)
            os.fsync(fd)
        finally:
            os.close(fd)

    def close(self) -> None:
        if not self._closed:
            self.flush()
            self._closed = True

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @property
    def events_emitted(self) -> int:
        return self._seq


def _jsonify(value):
    """Fallback encoder: numpy scalars/arrays -> plain python."""
    if hasattr(value, "item") and getattr(value, "ndim", None) == 0:
        return value.item()
    if hasattr(value, "tolist"):
        return value.tolist()
    raise TypeError(f"cannot serialize {type(value).__name__} in an event")


def read_events(path: str | os.PathLike, strict: bool = False) -> list[dict]:
    """Parse a JSONL event file written by :class:`EventLog`.

    A truncated final line (torn tail after a crash) is skipped unless
    ``strict=True``.  Raises :class:`~repro.errors.ConfigError` for
    missing files, schema mismatches, or mid-file corruption.
    """
    path = os.fspath(path)
    if not os.path.exists(path):
        raise ConfigError(f"no event log at {path}")
    with open(path, "r", encoding="utf-8") as handle:
        lines = handle.read().split("\n")
    # A well-formed log ends with "\n", so the final split element is "".
    torn = lines and lines[-1] != ""
    body = lines[:-1]
    events: list[dict] = []
    for index, line in enumerate(body):
        if not line.strip():
            continue
        try:
            event = json.loads(line)
        except json.JSONDecodeError as error:
            raise ConfigError(
                f"{path}:{index + 1}: corrupt event line: {error}"
            ) from error
        _validate_envelope(event, path, index + 1)
        events.append(event)
    if torn:
        if strict:
            raise ConfigError(f"{path} ends with a truncated event line")
        # Torn tail: try to parse it anyway (it may simply lack the
        # final newline); drop it silently if it is partial JSON.
        try:
            event = json.loads(lines[-1])
            _validate_envelope(event, path, len(lines))
            events.append(event)
        except (json.JSONDecodeError, ConfigError):
            pass
    return events


def _validate_envelope(event: dict, path: str, lineno: int) -> None:
    if not isinstance(event, dict) or "type" not in event or "data" not in event:
        raise ConfigError(f"{path}:{lineno}: not an event envelope")
    if event.get("schema") != SCHEMA_VERSION:
        raise ConfigError(
            f"{path}:{lineno}: schema {event.get('schema')!r} != {SCHEMA_VERSION}"
        )
