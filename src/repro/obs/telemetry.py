"""The telemetry facade: one object wiring a run directory together.

A :class:`Telemetry` instance owns the run directory and its four
artifacts (manifest, event log, metric registry, optional trace spans)
and exposes the domain-level recording calls the rest of the codebase
uses (``episode_end``, ``fault_activation``, ``nan_rollback`` …).

Design invariants, enforced by the test suite:

* **Opt-in** — every integration point takes ``telemetry=None`` and
  guards with a single ``is not None`` check, so disabled runs pay one
  attribute test per call site.
* **Zero RNG perturbation** — no method here draws from any random
  stream; training with telemetry on is bit-exact with telemetry off.
"""

from __future__ import annotations

import os
import time

from repro.errors import ConfigError
from repro.obs.events import EVENTS_FILENAME, EventLog
from repro.obs.manifest import RunManifest
from repro.obs.metrics import MetricRegistry
from repro.obs.spans import TRACE_FILENAME, SpanRecorder

#: Filename of the final metric snapshot inside a run directory.
METRICS_FILENAME = "metrics.json"


class Telemetry:
    """Structured observability for one training/evaluation run.

    Parameters
    ----------
    run_dir:
        Directory to create/populate.  Existing event logs are appended
        to (resume-friendly); the manifest is rewritten at start.
    config:
        JSON-safe run configuration recorded in the manifest and the
        ``run_begin`` event.
    seed:
        Base seed of the run (manifest provenance).
    agent_name:
        Human-readable controller name.
    trace_spans:
        Attach a :class:`~repro.obs.spans.SpanRecorder` to the global
        ``TIMERS`` so phase sections are exported as ``trace.json``.
        This enables the timers (wall-clock only; never touches RNG).
    flush_every:
        Event-buffer flush cadence (see :class:`~repro.obs.events.EventLog`).
    """

    def __init__(
        self,
        run_dir: str | os.PathLike,
        config: dict | None = None,
        seed: int = 0,
        agent_name: str = "",
        trace_spans: bool = False,
        flush_every: int = 64,
    ) -> None:
        self.run_dir = os.fspath(run_dir)
        os.makedirs(self.run_dir, exist_ok=True)
        self.manifest = RunManifest.capture(
            seed=seed, config=config, agent_name=agent_name
        )
        self.manifest.write(self.run_dir)
        self.events = EventLog(
            os.path.join(self.run_dir, EVENTS_FILENAME), flush_every=flush_every
        )
        self.metrics = MetricRegistry()
        self.spans: SpanRecorder | None = None
        self._timers_were_enabled = False
        if trace_spans:
            from repro.perf.timers import TIMERS

            self._timers_were_enabled = TIMERS.enabled
            self.spans = SpanRecorder()
            self.spans.attach(TIMERS)
        self._started = time.perf_counter()
        self._closed = False
        self.events.emit(
            "run_begin", seed=int(seed), agent=agent_name, config=config or {}
        )

    # ------------------------------------------------------------------
    # Episode lifecycle
    # ------------------------------------------------------------------
    def episode_begin(self, episode: int, seed: int) -> None:
        self.events.emit("episode_begin", episode=int(episode), seed=int(seed))
        self.metrics.count("train.episodes_started")

    def episode_end(
        self,
        episode: int,
        avg_wait: float,
        total_reward: float,
        duration_s: float,
    ) -> None:
        self.events.emit(
            "episode_end",
            episode=int(episode),
            avg_wait=float(avg_wait),
            total_reward=float(total_reward),
            duration_s=float(duration_s),
        )
        self.metrics.count("train.episodes_completed")
        self.metrics.gauge("train.last_avg_wait", avg_wait)
        self.metrics.observe("train.avg_wait", avg_wait)
        self.metrics.observe("train.total_reward", total_reward)
        self.metrics.observe("train.episode_seconds", duration_s)
        # Episode boundaries are the durability points: flush so a
        # killed run keeps every completed episode on disk and a live
        # run can be followed with ``obs tail``.
        self.events.flush()

    def update_stats(self, episode: int, stats: dict) -> None:
        """PPO/A2C update diagnostics for one episode."""
        if not stats:
            return
        clean = {
            key: float(value)
            for key, value in stats.items()
            if isinstance(value, (int, float))
        }
        self.events.emit("update", episode=int(episode), **clean)
        for key, value in clean.items():
            self.metrics.observe(f"update.{key}", value)

    # ------------------------------------------------------------------
    # Resilience events
    # ------------------------------------------------------------------
    def checkpoint_written(self, episode: int, path: str) -> None:
        self.events.emit("checkpoint", episode=int(episode), path=str(path))
        self.metrics.count("train.checkpoints")

    def nan_rollback(self, episode: int) -> None:
        self.events.emit("nan_rollback", episode=int(episode))
        self.metrics.count("train.nan_rollbacks")
        self.events.flush()

    def episode_aborted(self, episode: int, error: str) -> None:
        self.events.emit("episode_aborted", episode=int(episode), error=str(error))
        self.metrics.count("train.aborted_episodes")
        self.events.flush()

    def teleport(self, tick: int, count: int) -> None:
        """``count`` vehicles teleported at simulation time ``tick``."""
        self.events.emit("teleport", tick=int(tick), count=int(count))
        self.metrics.count("sim.teleports", count)

    def fault_activation(
        self, kind: str, fault_id: str, episode: int, tick: int | None, scope: str
    ) -> None:
        """First firing of one fault (``kind``) on one target this episode.

        ``scope`` is ``"episode"`` for per-episode faults (stuck
        detectors, dead controllers — active from ``tick`` to episode
        end) and ``"event"`` for per-event faults (the activation marks
        the first occurrence).
        """
        if scope not in ("episode", "event"):
            raise ConfigError(f"unknown fault scope {scope!r}")
        self.events.emit(
            "fault_activation",
            kind=str(kind),
            id=str(fault_id),
            episode=int(episode),
            tick=None if tick is None else int(tick),
            scope=scope,
        )
        self.metrics.count(f"faults.{kind}")

    # ------------------------------------------------------------------
    # Serving events (ops plane of repro.serve)
    # ------------------------------------------------------------------
    def serve_deadline_miss(
        self, tick: int, elapsed_ms: float, deadline_ms: float
    ) -> None:
        """One tick's policy evaluation ran past its deadline budget."""
        self.events.emit(
            "serve_deadline_miss",
            tick=int(tick),
            elapsed_ms=float(elapsed_ms),
            deadline_ms=float(deadline_ms),
        )
        self.metrics.count("serve.deadline_misses")
        self.metrics.observe("serve.miss_elapsed_ms", elapsed_ms)

    def serve_policy_failure(self, tick: int, error: str) -> None:
        """The policy raised during evaluation; the tick was served
        entirely from the fallback."""
        self.events.emit("serve_policy_failure", tick=int(tick), error=str(error))
        self.metrics.count("serve.policy_exceptions")
        self.events.flush()

    def serve_fallback(
        self, node_id: str, tick: int, reason: str, backoff_ticks: int
    ) -> None:
        """One intersection was demoted from the policy to the fallback."""
        self.events.emit(
            "serve_fallback",
            node=str(node_id),
            tick=int(tick),
            reason=str(reason),
            backoff_ticks=int(backoff_ticks),
        )
        self.metrics.count("serve.demotions")
        self.metrics.count(f"serve.fallback.{reason}")

    def serve_promotion(self, node_id: str, tick: int) -> None:
        """One intersection was re-promoted to the primary policy."""
        self.events.emit("serve_promotion", node=str(node_id), tick=int(tick))
        self.metrics.count("serve.promotions")

    def serve_watchdog_stall(self, tick: int, threshold_ms: float) -> None:
        """The watchdog fired: a policy evaluation is hung/very slow.

        Emitted from the watchdog timer thread while the evaluation may
        still be running (event-buffer appends are thread-safe).
        """
        self.events.emit(
            "serve_watchdog_stall",
            tick=int(tick),
            threshold_ms=float(threshold_ms),
        )
        self.metrics.count("serve.watchdog_stalls")

    def serve_reload(
        self, path: str, applied: bool, generation: int, reason: str = ""
    ) -> None:
        """Outcome of a checkpoint hot-reload attempt (applied or
        rejected-with-rollback).  Flushed immediately: reloads are the
        durability points of a serving session."""
        self.events.emit(
            "serve_reload",
            path=str(path),
            applied=bool(applied),
            generation=int(generation),
            reason=str(reason),
        )
        self.metrics.count(
            "serve.reloads_applied" if applied else "serve.reloads_rejected"
        )
        self.events.flush()

    def serve_session(self, report: dict) -> None:
        """End-of-session health snapshot (see
        :meth:`repro.serve.HealthTracker.report`)."""
        self.events.emit("serve_session", **report)
        self.metrics.gauge("serve.unserved", report.get("unserved", 0))
        self.metrics.gauge(
            "serve.intersections_per_second",
            report.get("intersections_per_second", 0.0),
        )
        self.events.flush()

    # ------------------------------------------------------------------
    # Sharded-simulation events (repro.sim.sharded)
    # ------------------------------------------------------------------
    def shard_spawn(
        self,
        shard: int,
        nodes: int,
        links: int,
        owned_links: int,
        cut_out: int,
        cut_in: int,
        pid: int | None,
    ) -> None:
        """One shard runtime came up (worker process or in-process).

        Flushed immediately: shard lifecycle is a durability point — if
        the run dies mid-episode the log still shows the topology.
        """
        self.events.emit(
            "shard_spawn",
            shard=int(shard),
            nodes=int(nodes),
            links=int(links),
            owned_links=int(owned_links),
            cut_out=int(cut_out),
            cut_in=int(cut_in),
            pid=None if pid is None else int(pid),
        )
        self.metrics.count("sharded.shards")
        self.events.flush()

    def shard_handoff(self, tick: int, total: int, edges: dict) -> None:
        """Aggregated boundary handoff volume since the last report.

        ``edges`` maps ``"src->dst"`` edge labels to vehicle counts; the
        coordinator flushes a window every ``handoff_report_every``
        ticks and once at run end, so event volume stays bounded no
        matter how busy the cuts are.
        """
        self.events.emit(
            "shard_handoff",
            tick=int(tick),
            total=int(total),
            edges={str(k): int(v) for k, v in edges.items()},
        )
        self.metrics.count("sharded.handoffs", total)

    def shard_link_loss(
        self, tick: int, src: int, dst: int, kind: str, held: int
    ) -> None:
        """One inter-shard boundary channel lost this tick's exchange.

        ``kind`` is ``"handoff"`` (the vehicle batch is held upstream
        and retried — ``held`` is its size) or ``"message"`` (occupancy
        and neighbour messages were dropped; receivers reuse stale
        values).
        """
        if kind not in ("handoff", "message"):
            raise ConfigError(f"unknown shard link-loss kind {kind!r}")
        self.events.emit(
            "shard_link_loss",
            tick=int(tick),
            src=int(src),
            dst=int(dst),
            kind=str(kind),
            held=int(held),
        )
        self.metrics.count(f"sharded.link_loss.{kind}")

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Emit ``run_end``, flush events, write metrics and trace."""
        if self._closed:
            return
        self._closed = True
        self.events.emit(
            "run_end", wall_s=time.perf_counter() - self._started
        )
        self.events.close()
        self.metrics.write(os.path.join(self.run_dir, METRICS_FILENAME))
        if self.spans is not None:
            self.spans.export_chrome_trace(
                os.path.join(self.run_dir, TRACE_FILENAME)
            )
            self.spans.detach()
            if not self._timers_were_enabled:
                from repro.perf.timers import TIMERS

                TIMERS.disable()

    def __enter__(self) -> "Telemetry":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
