"""Run manifest: everything needed to say *what* produced a run.

Captured once at run start and written atomically as ``manifest.json``
inside the run directory: the experiment config, base seed, git SHA of
the working tree (when available), platform triple, Python and package
versions.  Comparing two manifests answers "were these runs comparable"
without re-reading any code.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import time
from dataclasses import asdict, dataclass, field

import numpy as np

from repro.errors import ConfigError
from repro.version import __version__

#: Default filename inside a run directory.
MANIFEST_FILENAME = "manifest.json"


def _git_sha() -> str | None:
    """Best-effort git SHA of the current working tree (None outside git)."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
            check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


@dataclass
class RunManifest:
    """Immutable provenance record for one run."""

    seed: int
    config: dict = field(default_factory=dict)
    agent_name: str = ""
    git_sha: str | None = None
    platform: str = ""
    python_version: str = ""
    numpy_version: str = ""
    repro_version: str = ""
    argv: list[str] = field(default_factory=list)
    started_at: float = 0.0

    @classmethod
    def capture(
        cls, seed: int, config: dict | None = None, agent_name: str = ""
    ) -> "RunManifest":
        """Snapshot the current process environment."""
        return cls(
            seed=int(seed),
            config=dict(config or {}),
            agent_name=agent_name,
            git_sha=_git_sha(),
            platform=platform.platform(),
            python_version=sys.version.split()[0],
            numpy_version=np.__version__,
            repro_version=__version__,
            argv=list(sys.argv),
            started_at=time.time(),
        )

    # ------------------------------------------------------------------
    def write(self, run_dir: str | os.PathLike) -> str:
        """Atomically write ``manifest.json`` into ``run_dir``."""
        run_dir = os.fspath(run_dir)
        os.makedirs(run_dir, exist_ok=True)
        path = os.path.join(run_dir, MANIFEST_FILENAME)
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(asdict(self), handle, indent=2, sort_keys=True)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        return path

    @classmethod
    def load(cls, run_dir: str | os.PathLike) -> "RunManifest":
        """Read a manifest back from a run directory (or direct path)."""
        path = os.fspath(run_dir)
        if os.path.isdir(path):
            path = os.path.join(path, MANIFEST_FILENAME)
        if not os.path.exists(path):
            raise ConfigError(f"no manifest at {path}")
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except json.JSONDecodeError as error:
            raise ConfigError(f"corrupt manifest {path}: {error}") from error
        known = {f for f in cls.__dataclass_fields__}  # type: ignore[attr-defined]
        return cls(**{k: v for k, v in payload.items() if k in known})
