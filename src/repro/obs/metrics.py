"""In-process metric registry: counters, gauges and histograms.

A :class:`MetricRegistry` is a plain accumulator — no background
threads, no sampling, no RNG.  Instruments are created lazily on first
touch, so call sites can stay one guarded line::

    if metrics is not None:
        metrics.count("sim.teleports")

The registry snapshots to a JSON-safe dict (written as ``metrics.json``
by :class:`repro.obs.telemetry.Telemetry`) and can merge another
snapshot, which is how multi-seed runs aggregate per-seed registries.
"""

from __future__ import annotations

import json
import math
import os

from repro.errors import ConfigError


class Histogram:
    """Streaming summary of observed values (count/sum/min/max/last)."""

    __slots__ = ("count", "total", "minimum", "maximum", "last")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf
        self.last = float("nan")

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        self.last = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else float("nan")

    def to_dict(self) -> dict:
        if self.count == 0:
            return {"count": 0}
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "mean": self.mean,
            "last": self.last,
        }


class MetricRegistry:
    """Named counters, gauges and histograms for one run."""

    def __init__(self) -> None:
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    def count(self, name: str, amount: float = 1) -> None:
        """Increment counter ``name`` by ``amount`` (monotonic)."""
        self._counters[name] = self._counters.get(name, 0) + amount

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to its latest ``value``."""
        self._gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        """Add one sample to histogram ``name``."""
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram()
        histogram.observe(value)

    # ------------------------------------------------------------------
    def counter_value(self, name: str) -> float:
        return self._counters.get(name, 0)

    def gauge_value(self, name: str) -> float:
        if name not in self._gauges:
            raise ConfigError(f"unknown gauge {name!r}")
        return self._gauges[name]

    def histogram(self, name: str) -> Histogram:
        if name not in self._histograms:
            raise ConfigError(f"unknown histogram {name!r}")
        return self._histograms[name]

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-safe view of every instrument."""
        return {
            "counters": dict(sorted(self._counters.items())),
            "gauges": dict(sorted(self._gauges.items())),
            "histograms": {
                name: self._histograms[name].to_dict()
                for name in sorted(self._histograms)
            },
        }

    def merge(self, snapshot: dict) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Counters add; gauges take the incoming value; histograms combine
        their summaries (``last`` takes the incoming one).
        """
        for name, value in snapshot.get("counters", {}).items():
            self.count(name, value)
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name, value)
        for name, payload in snapshot.get("histograms", {}).items():
            if payload.get("count", 0) == 0:
                continue
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = Histogram()
            histogram.count += int(payload["count"])
            histogram.total += float(payload["sum"])
            histogram.minimum = min(histogram.minimum, float(payload["min"]))
            histogram.maximum = max(histogram.maximum, float(payload["max"]))
            histogram.last = float(payload["last"])

    def write(self, path: str | os.PathLike) -> None:
        """Atomically write the snapshot as JSON."""
        path = os.fspath(path)
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(self.snapshot(), handle, indent=2, sort_keys=True)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
