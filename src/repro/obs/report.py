"""Render a persisted run directory back into human-readable reports.

This is the read side of the telemetry layer: ``obs report`` rebuilds
the training curve (the paper's Fig. 7/8/10 series) from the persisted
``events.jsonl`` — no re-simulation — and renders it through the same
ASCII charts used by the live evaluation pipeline
(:mod:`repro.eval.reporting`); ``obs tail`` pretty-prints the most
recent events of a (possibly still-running) log.
"""

from __future__ import annotations

import csv
import os
import time
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigError
from repro.obs.events import EVENTS_FILENAME, read_events
from repro.obs.manifest import MANIFEST_FILENAME, RunManifest


def _events_path(run_dir: str | os.PathLike) -> str:
    path = os.fspath(run_dir)
    if os.path.isdir(path):
        return os.path.join(path, EVENTS_FILENAME)
    return path


@dataclass
class RunReport:
    """Parsed view of one run directory."""

    run_dir: str
    events: list[dict]
    manifest: RunManifest | None = None
    agent_name: str = ""
    episodes: list[dict] = field(default_factory=list)
    update_stats: list[dict] = field(default_factory=list)
    fault_activations: list[dict] = field(default_factory=list)
    nan_rollbacks: list[int] = field(default_factory=list)
    aborted_episodes: list[int] = field(default_factory=list)
    checkpoints: int = 0
    teleports: int = 0
    complete: bool = False

    @property
    def wait_curve(self) -> np.ndarray:
        return np.asarray([e["avg_wait"] for e in self.episodes], dtype=np.float64)

    @property
    def reward_curve(self) -> np.ndarray:
        return np.asarray(
            [e["total_reward"] for e in self.episodes], dtype=np.float64
        )


def load_run(run_dir: str | os.PathLike) -> RunReport:
    """Parse a run directory (or a bare ``events.jsonl``) into a report."""
    events = read_events(_events_path(run_dir))
    report = RunReport(run_dir=os.fspath(run_dir), events=events)
    manifest_path = os.path.join(os.fspath(run_dir), MANIFEST_FILENAME)
    if os.path.isdir(os.fspath(run_dir)) and os.path.exists(manifest_path):
        report.manifest = RunManifest.load(run_dir)
        report.agent_name = report.manifest.agent_name
    seen: dict[int, dict] = {}
    for event in events:
        kind, data = event["type"], event["data"]
        if kind == "run_begin":
            report.agent_name = data.get("agent") or report.agent_name
        elif kind == "episode_end":
            # Resumed runs may replay an episode index; last write wins.
            seen[int(data["episode"])] = data
        elif kind == "update":
            report.update_stats.append(data)
        elif kind == "fault_activation":
            report.fault_activations.append(data)
        elif kind == "nan_rollback":
            report.nan_rollbacks.append(int(data["episode"]))
        elif kind == "episode_aborted":
            report.aborted_episodes.append(int(data["episode"]))
        elif kind == "checkpoint":
            report.checkpoints += 1
        elif kind == "teleport":
            report.teleports += int(data.get("count", 1))
        elif kind == "run_end":
            report.complete = True
    report.episodes = [seen[episode] for episode in sorted(seen)]
    return report


def render_report(run_dir: str | os.PathLike, width: int = 60) -> str:
    """Human-readable summary of one run (the ``obs report`` output)."""
    from repro.eval.reporting import ascii_chart, sparkline

    report = load_run(run_dir)
    lines: list[str] = []
    header = f"run: {report.run_dir}"
    if report.agent_name:
        header += f"  model: {report.agent_name}"
    if report.manifest is not None:
        header += f"  seed: {report.manifest.seed}"
        if report.manifest.git_sha:
            header += f"  git: {report.manifest.git_sha[:10]}"
    lines.append(header)
    if not report.complete:
        lines.append("(run still in progress — no run_end event yet)")
    curve = report.wait_curve
    if curve.size == 0:
        lines.append("no completed episodes recorded")
        return "\n".join(lines)
    finite = curve[np.isfinite(curve)]
    lines.append(
        f"episodes: {curve.size}  wait: first {curve[0]:.1f}s  "
        f"best {finite.min():.1f}s  final {curve[-1]:.1f}s"
        if finite.size
        else f"episodes: {curve.size} (no finite wait samples)"
    )
    lines.append(sparkline(curve, width=width))
    if curve.size >= 2:
        lines.append("")
        lines.append(
            ascii_chart(
                {"avg_wait": curve}, height=10, width=width,
                title="average waiting time per episode (s)",
            )
        )
    counts = [
        f"checkpoints {report.checkpoints}",
        f"fault activations {len(report.fault_activations)}",
        f"nan rollbacks {len(report.nan_rollbacks)}",
        f"aborted episodes {len(report.aborted_episodes)}",
        f"teleports {report.teleports}",
    ]
    lines.append("")
    lines.append("events: " + ", ".join(counts))
    return "\n".join(lines)


def export_run_csv(run_dir: str | os.PathLike, path: str | os.PathLike) -> None:
    """Write the persisted per-episode series as CSV (re-plot anywhere)."""
    report = load_run(run_dir)
    if not report.episodes:
        raise ConfigError(f"{report.run_dir} has no completed episodes")
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["episode", "avg_wait_s", "total_reward", "duration_s"])
        for entry in report.episodes:
            writer.writerow(
                [
                    entry["episode"],
                    f"{entry['avg_wait']:.4f}",
                    f"{entry['total_reward']:.4f}",
                    f"{entry.get('duration_s', 0.0):.4f}",
                ]
            )


def tail_events(run_dir: str | os.PathLike, n: int = 10) -> list[str]:
    """Pretty-print the last ``n`` events (the ``obs tail`` output)."""
    if n <= 0:
        raise ConfigError("n must be positive")
    events = read_events(_events_path(run_dir))
    lines = []
    for event in events[-n:]:
        stamp = time.strftime("%H:%M:%S", time.localtime(event.get("wall", 0)))
        data = event["data"]
        detail = " ".join(f"{k}={_fmt(v)}" for k, v in sorted(data.items()))
        lines.append(f"{stamp} #{event['seq']:<5d} {event['type']:<16s} {detail}")
    return lines


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    if isinstance(value, dict):
        return "{" + ",".join(sorted(map(str, value))) + "}"
    return str(value)
