"""Plain-text rendering of simulation state.

Quick situational awareness for examples and debugging: a per-link
occupancy table and, for grid networks, a compact ASCII map showing each
intersection's active phase and total queued vehicles.
"""

from __future__ import annotations

from repro.sim.engine import Simulation


def occupancy_table(sim: Simulation, top: int = 10) -> str:
    """The ``top`` most occupied links with queue/running breakdown."""
    rows = []
    for link_id, link in sim.network.links.items():
        queued = sim.halting_count(link_id)
        running = len(sim.running[link_id])
        if queued + running == 0:
            continue
        rows.append((queued + running, link_id, queued, running, link.storage))
    rows.sort(reverse=True)
    lines = [f"t={sim.time}s  vehicles={sim.vehicles_in_network()} "
             f"pending={sim.pending_insertions()} finished={len(sim.finished_vehicles)}"]
    lines.append(f"{'link':<24} {'queued':>7} {'running':>8} {'storage':>8}")
    for _, link_id, queued, running, storage in rows[:top]:
        lines.append(f"{link_id:<24} {queued:>7} {running:>8} {storage:>8}")
    return "\n".join(lines)


def _phase_glyph(sim: Simulation, node_id: str) -> str:
    signal = sim.signals.get(node_id)
    if signal is None:
        return "."
    if signal.in_yellow:
        return "y"
    name = signal.current_phase.name
    glyphs = {
        "NS-through": "|",
        "NS-left": "\\",
        "EW-through": "-",
        "EW-left": "/",
    }
    return glyphs.get(name, str(signal.current_phase_index))


def grid_map(sim: Simulation, rows: int, cols: int) -> str:
    """ASCII map of a grid scenario: phase glyph + queued count per node.

    Glyphs: ``|`` NS-through, ``\\`` NS-left, ``-`` EW-through,
    ``/`` EW-left, ``y`` yellow.
    """
    from repro.scenarios.grid import intersection_id

    lines = [f"t={sim.time}s (| NS  - EW  \\/ lefts  y yellow)"]
    for row in range(rows):
        cells = []
        for col in range(cols):
            node_id = intersection_id(row, col)
            queued = sum(
                sim.halting_count(link_id)
                for link_id in sim.network.nodes[node_id].incoming
            )
            cells.append(f"{_phase_glyph(sim, node_id)}{queued:>3}")
        lines.append("  ".join(cells))
    return "\n".join(lines)
