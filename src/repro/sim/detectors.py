"""Range-limited sensing: loop detectors / lane-area detectors / cameras.

The paper stresses (Fig. 2 and Section IV-A) that real sensors only cover
a finite stretch of road — 50 m in their 6x6 grid — and that states built
from such partial observations must therefore use *pressure* rather than
raw queue length.  This module computes exactly those observed
quantities: vehicles visible within ``coverage`` metres of a stop line,
per lane, per movement (with equal splitting for shared lanes), and the
resulting link- and intersection-level pressures.
"""

from __future__ import annotations

from repro.errors import SimulationError
from repro.sim.engine import Simulation
from repro.sim.network import VEHICLE_SPACE_M, Movement

#: Detector coverage used by the paper's 6x6 grid (metres from stop line).
DEFAULT_COVERAGE_M = 50.0


class DetectorSuite:
    """Computes observed traffic quantities for one simulation.

    Parameters
    ----------
    sim:
        The live simulation to observe.
    coverage:
        Sensing range in metres measured upstream from each stop line
        (and downstream from each link entry, for outgoing observation).
    """

    def __init__(self, sim: Simulation, coverage: float = DEFAULT_COVERAGE_M) -> None:
        if coverage <= 0:
            raise SimulationError("detector coverage must be positive")
        self.sim = sim
        self.coverage = coverage

    # ------------------------------------------------------------------
    # Lane-level observation
    # ------------------------------------------------------------------
    def observed_queue(self, lane_id: str) -> int:
        """Halted vehicles visible in a lane.

        Queued vehicles stand ``VEHICLE_SPACE_M`` apart starting at the
        stop line, so at most ``floor(coverage / VEHICLE_SPACE_M)`` are
        visible regardless of the true queue length — the sensing
        limitation the paper's Fig. 2 illustrates.
        """
        visible_slots = int(self.coverage // VEHICLE_SPACE_M)
        return min(self.sim.queue_length(lane_id), visible_slots)

    def observed_approaching(self, link_id: str) -> int:
        """Running vehicles within ``coverage`` of the link's stop line."""
        link = self.sim.network.links[link_id]
        count = 0
        for vehicle in self.sim.running[link_id]:
            travelled = link.speed_limit * (self.sim.time - vehicle.run_start)
            distance_to_stop = max(0.0, link.length - travelled)
            if distance_to_stop <= self.coverage:
                count += 1
        return count

    def observed_on_link(self, link_id: str) -> int:
        """All vehicles visible on a link near its stop line."""
        link = self.sim.network.links[link_id]
        queued = sum(self.observed_queue(lane.lane_id) for lane in link.lanes)
        return queued + self.observed_approaching(link_id)

    def observed_downstream(self, link_id: str) -> int:
        """Vehicles visible near the *entry* of a link (just discharged).

        Used as the outgoing-side term of pressure: a congested receiving
        link shows many vehicles still near its upstream end.
        """
        link = self.sim.network.links[link_id]
        count = 0
        for vehicle in self.sim.running[link_id]:
            travelled = link.speed_limit * (self.sim.time - vehicle.run_start)
            if travelled <= self.coverage:
                count += 1
        # A queue that has spilled back past (length - coverage) is visible too.
        spillback_threshold = max(0.0, link.length - self.coverage) / VEHICLE_SPACE_M
        for lane in link.lanes:
            overflow = self.sim.queue_length(lane.lane_id) - spillback_threshold
            if overflow > 0:
                count += int(overflow)
        return count

    # ------------------------------------------------------------------
    # Movement / link pressure (paper Eq. 5 and Fig. 2)
    # ------------------------------------------------------------------
    def movement_incoming_count(self, movement: Movement) -> float:
        """Observed vehicles on the in-link attributable to a movement.

        Vehicles in a shared lane are split equally across the movements
        sharing that lane (paper Fig. 2: "If multiple movements share one
        lane, it is equally distributed to link level").
        """
        network = self.sim.network
        total = 0.0
        for lane in network.lanes_for_movement(movement):
            sharers = len(network.movements_for_lane(lane))
            if sharers == 0:
                continue
            total += self.observed_queue(lane.lane_id) / sharers
        # Approaching vehicles are attributed proportionally to lane shares.
        link = network.links[movement.in_link]
        movements_here = network.movements_from(movement.in_link)
        if movements_here:
            total += self.observed_approaching(movement.in_link) / len(movements_here)
        return total

    def movement_pressure(self, movement: Movement) -> float:
        """Pressure of one movement: incoming minus outgoing observation,
        normalized per lane of the receiving link."""
        out_link = self.sim.network.links[movement.out_link]
        outgoing = self.observed_downstream(movement.out_link) / out_link.num_lanes
        return self.movement_incoming_count(movement) - outgoing

    def link_pressure(self, link_id: str) -> float:
        """Link-level pressure: sum of its movements' pressures."""
        movements = self.sim.network.movements_from(link_id)
        return sum(self.movement_pressure(m) for m in movements)

    def intersection_pressure(self, node_id: str) -> float:
        """Total absolute pressure at an intersection.

        Used for congestion ranking when PairUpLight picks its
        communication partner; absolute values so that both starved and
        flooded approaches register as imbalance.
        """
        return sum(
            abs(self.movement_pressure(m)) for m in self.sim.network.movements_at(node_id)
        )

    def intersection_congestion(self, node_id: str) -> float:
        """Congestion score of an intersection: observed halted vehicles.

        The paper pairs each intersection with "the most congested
        upstream intersection"; this score ranks candidates.
        """
        node = self.sim.network.nodes[node_id]
        return float(
            sum(self.observed_on_link(link_id) for link_id in node.incoming)
        )

    def head_wait(self, link_id: str) -> int:
        """Waiting time of the head vehicle on a link (paper's wait term)."""
        return self.sim.link_head_wait(link_id)
