"""Range-limited sensing: loop detectors / lane-area detectors / cameras.

The paper stresses (Fig. 2 and Section IV-A) that real sensors only cover
a finite stretch of road — 50 m in their 6x6 grid — and that states built
from such partial observations must therefore use *pressure* rather than
raw queue length.  This module computes exactly those observed
quantities: vehicles visible within ``coverage`` metres of a stop line,
per lane, per movement (with equal splitting for shared lanes), and the
resulting link- and intersection-level pressures.

Readings are memoized per simulation tick: the simulation only changes
state inside :meth:`Simulation.step`, so any quantity queried twice at
the same ``sim.time`` is identical.  Subclasses whose readings are *not*
pure functions of simulation state (fault injection consumes RNG on
every read) must set ``_cache_enabled = False``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError
from repro.sim.engine import Simulation
from repro.sim.network import VEHICLE_SPACE_M, Movement

#: Detector coverage used by the paper's 6x6 grid (metres from stop line).
DEFAULT_COVERAGE_M = 50.0


class DetectorSuite:
    """Computes observed traffic quantities for one simulation.

    Parameters
    ----------
    sim:
        The live simulation to observe.
    coverage:
        Sensing range in metres measured upstream from each stop line
        (and downstream from each link entry, for outgoing observation).
    """

    def __init__(self, sim: Simulation, coverage: float = DEFAULT_COVERAGE_M) -> None:
        if coverage <= 0:
            raise SimulationError("detector coverage must be positive")
        self.sim = sim
        self.coverage = coverage
        network = sim.network
        # Static per-network lookups, resolved once so the per-tick hot
        # path does no list comprehensions or property formatting.
        self._visible_slots = int(coverage // VEHICLE_SPACE_M)
        self._link_geom: dict[str, tuple[float, float, tuple[str, ...], float]] = {}
        for link_id, link in network.links.items():
            spillback_threshold = max(0.0, link.length - coverage) / VEHICLE_SPACE_M
            self._link_geom[link_id] = (
                link.length,
                link.speed_limit,
                tuple(lane.lane_id for lane in link.lanes),
                spillback_threshold,
            )
        self._out_num_lanes = {
            link_id: link.num_lanes for link_id, link in network.links.items()
        }
        # Per movement: the (lane_id, sharer count) pairs contributing to
        # its incoming count, in the reference iteration order, with
        # zero-sharer lanes already filtered out.
        self._movement_lanes: dict[object, tuple[tuple[str, int], ...]] = {}
        for movement in network.movements.values():
            pairs = []
            for lane in network.lanes_for_movement(movement):
                sharers = len(network.movements_for_lane(lane))
                if sharers:
                    pairs.append((lane.lane_id, sharers))
            self._movement_lanes[movement.key] = tuple(pairs)
        self._in_link_movement_count = {
            link_id: len(network.movements_from(link_id))
            for link_id in network.links
        }
        self._movements_from = {
            link_id: tuple(network.movements_from(link_id))
            for link_id in network.links
        }
        self._movements_at = {
            node_id: tuple(network.movements_at(node_id))
            for node_id in network.nodes
        }
        self._node_incoming = {
            node_id: tuple(node.incoming) for node_id, node in network.nodes.items()
        }
        # Per-tick memo: valid only while ``sim.time`` is unchanged.
        self._cache_enabled = True
        self._cache_time = -1
        self._cache: dict[object, float | int] = {}
        # Bulk mode computes every link/movement/node quantity of a tick
        # in one vectorized pass.  It replicates the raw computations
        # element-for-element (including float accumulation order), but
        # it bypasses the overridable ``observed_*`` methods — so it is
        # restricted to the exact base class.
        self._bulk_enabled = type(self) is DetectorSuite
        self._bulk_time = -1
        if self._bulk_enabled:
            self._build_bulk_index()

    def _build_bulk_index(self) -> None:
        """Static index arrays mapping the scatter-add aggregations back
        to the reference iteration order of the per-call raw methods."""
        network = self.sim.network
        self._link_order = tuple(self._link_geom)
        self._link_index = {l: i for i, l in enumerate(self._link_order)}
        lane_order: list[str] = []
        for link_id in self._link_order:
            lane_order.extend(self._link_geom[link_id][2])
        self._lane_order = tuple(lane_order)
        lane_index = {l: i for i, l in enumerate(lane_order)}
        self._node_order = tuple(network.nodes)
        self._node_index = {n: i for i, n in enumerate(self._node_order)}
        movements = list(network.movements.values())
        self._mv_index = {m.key: i for i, m in enumerate(movements)}

        # queued-per-link: lanes grouped per link, in link lane order.
        self._onl_link = np.repeat(
            np.arange(len(self._link_order)),
            [len(self._link_geom[l][2]) for l in self._link_order],
        )
        # movement incoming: (movement, lane, sharers) triples in the
        # _movement_lanes order, lanes-before-approaching per movement.
        in_mv, in_lane, in_sharers = [], [], []
        for mv_i, movement in enumerate(movements):
            for lane_id, sharers in self._movement_lanes[movement.key]:
                in_mv.append(mv_i)
                in_lane.append(lane_index[lane_id])
                in_sharers.append(float(sharers))
        self._in_mv = np.asarray(in_mv, dtype=np.intp)
        self._in_lane = np.asarray(in_lane, dtype=np.intp)
        self._in_sharers = np.asarray(in_sharers)
        self._mv_in_link = np.asarray(
            [self._link_index[m.in_link] for m in movements], dtype=np.intp
        )
        in_counts = np.asarray(
            [float(self._in_link_movement_count[m.in_link]) for m in movements]
        )
        # The raw method skips the approaching term when the in-link has
        # no movements; avoid 0/0 while contributing exactly nothing.
        self._mv_in_scale = np.where(in_counts > 0, 1.0, 0.0)
        self._mv_in_count = np.where(in_counts > 0, in_counts, 1.0)
        self._mv_out_link = np.asarray(
            [self._link_index[m.out_link] for m in movements], dtype=np.intp
        )
        self._mv_out_lanes = np.asarray(
            [float(self._out_num_lanes[m.out_link]) for m in movements]
        )
        # link pressure / intersection pressure groupings, in the
        # _movements_from / _movements_at iteration order.
        lp_link, lp_mv = [], []
        for link_i, link_id in enumerate(self._link_order):
            for m in self._movements_from[link_id]:
                lp_link.append(link_i)
                lp_mv.append(self._mv_index[m.key])
        self._lp_link = np.asarray(lp_link, dtype=np.intp)
        self._lp_mv = np.asarray(lp_mv, dtype=np.intp)
        ip_node, ip_mv = [], []
        ic_node, ic_link = [], []
        for node_i, node_id in enumerate(self._node_order):
            for m in self._movements_at[node_id]:
                ip_node.append(node_i)
                ip_mv.append(self._mv_index[m.key])
            for link_id in self._node_incoming[node_id]:
                ic_node.append(node_i)
                ic_link.append(self._link_index[link_id])
        self._ip_node = np.asarray(ip_node, dtype=np.intp)
        self._ip_mv = np.asarray(ip_mv, dtype=np.intp)
        self._ic_node = np.asarray(ic_node, dtype=np.intp)
        self._ic_link = np.asarray(ic_link, dtype=np.intp)

    def _bulk_compute(self) -> None:
        """One vectorized pass over the whole network for this tick."""
        sim = self.sim
        now = sim.time
        coverage = self.coverage
        running = sim.running
        queue_length = sim.queue_length
        num_links = len(self._link_order)
        queue_len = np.fromiter(
            (queue_length(lane_id) for lane_id in self._lane_order),
            dtype=np.int64,
            count=len(self._lane_order),
        )
        queue_obs = np.minimum(queue_len, self._visible_slots)
        app = np.zeros(num_links, dtype=np.int64)
        down = np.zeros(num_links, dtype=np.int64)
        lane_cursor = 0
        for link_i, link_id in enumerate(self._link_order):
            length, speed_limit, lane_ids, spillback_threshold = self._link_geom[
                link_id
            ]
            approaching = near_entry = 0
            for vehicle in running[link_id]:
                travelled = speed_limit * (now - vehicle.run_start)
                if max(0.0, length - travelled) <= coverage:
                    approaching += 1
                if travelled <= coverage:
                    near_entry += 1
            for lane_offset in range(len(lane_ids)):
                overflow = queue_len[lane_cursor + lane_offset] - spillback_threshold
                if overflow > 0:
                    near_entry += int(overflow)
            lane_cursor += len(lane_ids)
            app[link_i] = approaching
            down[link_i] = near_entry
        onl = np.zeros(num_links, dtype=np.int64)
        np.add.at(onl, self._onl_link, queue_obs)
        onl += app

        incoming = np.zeros(len(self._mv_index))
        np.add.at(
            incoming, self._in_mv, queue_obs[self._in_lane] / self._in_sharers
        )
        incoming += (app[self._mv_in_link] / self._mv_in_count) * self._mv_in_scale
        mp = incoming - down[self._mv_out_link] / self._mv_out_lanes
        lp = np.zeros(num_links)
        np.add.at(lp, self._lp_link, mp[self._lp_mv])
        ip = np.zeros(len(self._node_order))
        np.add.at(ip, self._ip_node, np.abs(mp[self._ip_mv]))
        ic = np.zeros(len(self._node_order), dtype=np.int64)
        np.add.at(ic, self._ic_node, onl[self._ic_link])

        self._bulk_app = app
        self._bulk_down = down
        self._bulk_onl = onl
        self._bulk_mp = mp
        self._bulk_lp = lp
        self._bulk_ip = ip
        self._bulk_ic = ic
        self._bulk_time = now

    def _bulk_ready(self) -> bool:
        if self._bulk_time != self.sim.time:
            self._bulk_compute()
        return True

    def _tick_cache(self) -> dict[object, float | int]:
        sim_time = self.sim.time
        if sim_time != self._cache_time:
            self._cache_time = sim_time
            self._cache.clear()
        return self._cache

    # ------------------------------------------------------------------
    # Lane-level observation
    # ------------------------------------------------------------------
    def observed_queue(self, lane_id: str) -> int:
        """Halted vehicles visible in a lane.

        Queued vehicles stand ``VEHICLE_SPACE_M`` apart starting at the
        stop line, so at most ``floor(coverage / VEHICLE_SPACE_M)`` are
        visible regardless of the true queue length — the sensing
        limitation the paper's Fig. 2 illustrates.
        """
        return min(self.sim.queue_length(lane_id), self._visible_slots)

    def observed_approaching(self, link_id: str) -> int:
        """Running vehicles within ``coverage`` of the link's stop line."""
        if not self._cache_enabled:
            return self._observed_approaching_raw(link_id)
        if self._bulk_enabled and self._bulk_ready():
            return int(self._bulk_app[self._link_index[link_id]])
        cache = self._tick_cache()
        key = ("app", link_id)
        value = cache.get(key)
        if value is None:
            value = cache[key] = self._observed_approaching_raw(link_id)
        return value

    def _observed_approaching_raw(self, link_id: str) -> int:
        length, speed_limit, _, _ = self._link_geom[link_id]
        now = self.sim.time
        coverage = self.coverage
        count = 0
        for vehicle in self.sim.running[link_id]:
            travelled = speed_limit * (now - vehicle.run_start)
            distance_to_stop = max(0.0, length - travelled)
            if distance_to_stop <= coverage:
                count += 1
        return count

    def observed_on_link(self, link_id: str) -> int:
        """All vehicles visible on a link near its stop line."""
        if not self._cache_enabled:
            return self._observed_on_link_raw(link_id)
        if self._bulk_enabled and self._bulk_ready():
            return int(self._bulk_onl[self._link_index[link_id]])
        cache = self._tick_cache()
        key = ("onl", link_id)
        value = cache.get(key)
        if value is None:
            value = cache[key] = self._observed_on_link_raw(link_id)
        return value

    def _observed_on_link_raw(self, link_id: str) -> int:
        lane_ids = self._link_geom[link_id][2]
        queued = sum(self.observed_queue(lane_id) for lane_id in lane_ids)
        return queued + self.observed_approaching(link_id)

    def observed_downstream(self, link_id: str) -> int:
        """Vehicles visible near the *entry* of a link (just discharged).

        Used as the outgoing-side term of pressure: a congested receiving
        link shows many vehicles still near its upstream end.
        """
        if not self._cache_enabled:
            return self._observed_downstream_raw(link_id)
        if self._bulk_enabled and self._bulk_ready():
            return int(self._bulk_down[self._link_index[link_id]])
        cache = self._tick_cache()
        key = ("down", link_id)
        value = cache.get(key)
        if value is None:
            value = cache[key] = self._observed_downstream_raw(link_id)
        return value

    def _observed_downstream_raw(self, link_id: str) -> int:
        _, speed_limit, lane_ids, spillback_threshold = self._link_geom[link_id]
        sim = self.sim
        now = sim.time
        coverage = self.coverage
        count = 0
        for vehicle in sim.running[link_id]:
            travelled = speed_limit * (now - vehicle.run_start)
            if travelled <= coverage:
                count += 1
        # A queue that has spilled back past (length - coverage) is visible too.
        for lane_id in lane_ids:
            overflow = sim.queue_length(lane_id) - spillback_threshold
            if overflow > 0:
                count += int(overflow)
        return count

    # ------------------------------------------------------------------
    # Movement / link pressure (paper Eq. 5 and Fig. 2)
    # ------------------------------------------------------------------
    def movement_incoming_count(self, movement: Movement) -> float:
        """Observed vehicles on the in-link attributable to a movement.

        Vehicles in a shared lane are split equally across the movements
        sharing that lane (paper Fig. 2: "If multiple movements share one
        lane, it is equally distributed to link level").
        """
        total = 0.0
        for lane_id, sharers in self._movement_lanes[movement.key]:
            total += self.observed_queue(lane_id) / sharers
        # Approaching vehicles are attributed proportionally to lane shares.
        movements_here = self._in_link_movement_count[movement.in_link]
        if movements_here:
            total += self.observed_approaching(movement.in_link) / movements_here
        return total

    def movement_pressure(self, movement: Movement) -> float:
        """Pressure of one movement: incoming minus outgoing observation,
        normalized per lane of the receiving link."""
        if not self._cache_enabled:
            return self._movement_pressure_raw(movement)
        if self._bulk_enabled and self._bulk_ready():
            return float(self._bulk_mp[self._mv_index[movement.key]])
        cache = self._tick_cache()
        key = ("mp", movement.key)
        value = cache.get(key)
        if value is None:
            value = cache[key] = self._movement_pressure_raw(movement)
        return value

    def _movement_pressure_raw(self, movement: Movement) -> float:
        outgoing = (
            self.observed_downstream(movement.out_link)
            / self._out_num_lanes[movement.out_link]
        )
        return self.movement_incoming_count(movement) - outgoing

    def link_pressure(self, link_id: str) -> float:
        """Link-level pressure: sum of its movements' pressures."""
        if not self._cache_enabled:
            return self._link_pressure_raw(link_id)
        if self._bulk_enabled and self._bulk_ready():
            return float(self._bulk_lp[self._link_index[link_id]])
        cache = self._tick_cache()
        key = ("lp", link_id)
        value = cache.get(key)
        if value is None:
            value = cache[key] = self._link_pressure_raw(link_id)
        return value

    def _link_pressure_raw(self, link_id: str) -> float:
        return sum(self.movement_pressure(m) for m in self._movements_from[link_id])

    def intersection_pressure(self, node_id: str) -> float:
        """Total absolute pressure at an intersection.

        Used for congestion ranking when PairUpLight picks its
        communication partner; absolute values so that both starved and
        flooded approaches register as imbalance.
        """
        if not self._cache_enabled:
            return self._intersection_pressure_raw(node_id)
        if self._bulk_enabled and self._bulk_ready():
            return float(self._bulk_ip[self._node_index[node_id]])
        cache = self._tick_cache()
        key = ("ip", node_id)
        value = cache.get(key)
        if value is None:
            value = cache[key] = self._intersection_pressure_raw(node_id)
        return value

    def _intersection_pressure_raw(self, node_id: str) -> float:
        return sum(
            abs(self.movement_pressure(m)) for m in self._movements_at[node_id]
        )

    def intersection_congestion(self, node_id: str) -> float:
        """Congestion score of an intersection: observed halted vehicles.

        The paper pairs each intersection with "the most congested
        upstream intersection"; this score ranks candidates.
        """
        if not self._cache_enabled:
            return self._intersection_congestion_raw(node_id)
        if self._bulk_enabled and self._bulk_ready():
            return float(self._bulk_ic[self._node_index[node_id]])
        cache = self._tick_cache()
        key = ("ic", node_id)
        value = cache.get(key)
        if value is None:
            value = cache[key] = self._intersection_congestion_raw(node_id)
        return value

    def _intersection_congestion_raw(self, node_id: str) -> float:
        return float(
            sum(
                self.observed_on_link(link_id)
                for link_id in self._node_incoming[node_id]
            )
        )

    def head_wait(self, link_id: str) -> int:
        """Waiting time of the head vehicle on a link (paper's wait term)."""
        return self.sim.link_head_wait(link_id)
