"""Structure-of-arrays batched simulation engine.

:class:`SoAEngine` steps ``B`` independent replicas of one scenario
(same network and phase plans, independent demand streams) in a single
process.  Per-tick work is split into two layers:

* **vectorized filters** over flat ``(B * lanes,)`` / ``(B, signals)``
  numpy arrays — credit accrual, signal state machines, the
  green/permissive-left permission gather, teleport detection, and the
  advance wake-up mask — which decide *which* (replica, lane/link)
  cells need any work this tick;
* **sparse scalar events** — the handful of actual vehicle movements a
  tick produces (pops, link entries, finishes, insertions, arrivals) —
  executed over plain Python lists/deques in exactly the reference
  engine's iteration order.

The split works because the object engine's cost is dominated by
*scanning* (every lane, every link, every tick) while actual vehicle
events are sparse; the scans vectorize across the whole batch and the
events stay cheap scalar code.

Semantics are pinned to :class:`repro.sim.engine.Simulation`: every
replica's trajectory is **bit-exact** with a solo ``Simulation`` run fed
the same demand stream (``tests/sim/test_soa_lockstep.py`` locksteps the
two per tick on grid/arterial/monaco, with spillback, permissive lefts,
startup lost time, and teleports).  Key invariants the kernels exploit —
each proved by the reference implementation's structure:

* discharge credit is capped at 1.0, so a lane pops **at most one**
  vehicle per tick;
* whether a head *may attempt* to cross is a pure function of
  ``(head movement, signal phase, yellow)`` — a static table gather —
  while the dynamic parts (spillback storage, permissive-left opposing
  traffic) are evaluated live, in lane order, by the scalar loop;
* queue pops during discharge never *add* vehicles to any queue, so the
  candidate set computed up front stays exact;
* advance outcomes per link depend only on that link's own queues, so
  links are processed independently and blocked vehicles only need
  re-examination after one of their link's queues popped.

:class:`SoAReplicaView` exposes one replica behind the ``Simulation``
introspection API (``queue_length``, ``head_wait``, ``link_head_wait``,
``halting_count``, ``discharge_credit``, ``is_drained``, ``signals``,
``running``, ``vehicles``, ...) so detectors, ``tsc_env``, metrics, and
``repro.serve`` run unmodified on top of a replica.
"""

from __future__ import annotations

import gc
import math
from collections import deque

import numpy as np

from repro.errors import NetworkError, SimulationError
from repro.sim.demand import DemandGenerator
from repro.sim.engine import (
    DEFAULT_PERMISSIVE_GAP_M,
    DEFAULT_SATURATION_RATE,
    DEFAULT_STARTUP_LOST_TIME,
)
from repro.sim.network import RoadNetwork, TurnType
from repro.sim.signal import FixedTimeProgram, PhasePlan
from repro.sim.vehicle import VehicleState

#: Sentinel "never" tick for arrival/anchor arrays (far beyond any run).
_BIG = np.int64(2**60)


class SoAEngine:
    """Batched structure-of-arrays twin of :class:`Simulation`.

    Parameters mirror :class:`Simulation`; ``demands`` is one
    :class:`DemandGenerator` per replica (``B = len(demands)``).  All
    replicas share the network, phase plans, and flow *structure* (the
    same flows with the same profiles — what differs per replica is the
    seeded emission stream).  Demand is precomputed at construction by
    replaying each generator's exact emission arithmetic with one
    vectorized Poisson call per replica (bit-identical to the
    per-tick scalar draws — numpy Generators consume the bitstream
    identically for ``poisson(lam_array)`` and sequential scalar calls).
    """

    def __init__(
        self,
        network: RoadNetwork,
        demands: list[DemandGenerator | None],
        phase_plans: dict[str, PhasePlan],
        yellow_time: int = 2,
        saturation_rate: float = DEFAULT_SATURATION_RATE,
        startup_lost_time: float = DEFAULT_STARTUP_LOST_TIME,
        permissive_left: bool = True,
        permissive_gap_m: float = DEFAULT_PERMISSIVE_GAP_M,
        teleport_time: int | None = None,
    ) -> None:
        if not demands:
            raise SimulationError("SoAEngine needs at least one replica demand")
        if not network.validated:
            network.validate()
        missing = set(network.signalized_nodes()) - set(phase_plans)
        if missing:
            raise SimulationError(
                f"no phase plan for signalized nodes: {sorted(missing)}"
            )
        if saturation_rate <= 0:
            raise SimulationError("saturation_rate must be positive")
        if startup_lost_time < 0:
            raise SimulationError("startup_lost_time must be non-negative")
        if teleport_time is not None and teleport_time <= 0:
            raise SimulationError("teleport_time must be positive when set")
        self.network = network
        self.phase_plans = phase_plans
        self.yellow_time = yellow_time
        self.saturation_rate = saturation_rate
        self.startup_lost_time = startup_lost_time
        self.permissive_left = permissive_left
        self.permissive_gap_m = permissive_gap_m
        self.teleport_time = teleport_time
        self.batch = len(demands)
        self.time = 0
        self._demands = list(demands)
        #: Active capacity factors per link (absent = 1.0, healthy).
        #: Engine-wide: an incident closure applies to every replica,
        #: matching the batched use of one scenario across replicas.
        self.capacity_factors: dict[str, float] = {}
        #: Optional :class:`repro.faults.incidents.IncidentSchedule`
        #: applied at the start of every tick (lane/link closures).
        self.incidents = None
        self._build_static_index()
        self._build_signal_state()
        self._build_dynamic_state()
        self._precompute_demand()

    # ------------------------------------------------------------------
    # Construction: static network/flow indexes
    # ------------------------------------------------------------------
    def _build_static_index(self) -> None:
        network = self.network
        self._link_ids: list[str] = list(network.links)
        self._link_of = {lid: i for i, lid in enumerate(self._link_ids)}
        self.LK = len(self._link_ids)
        self._lane_ids: list[str] = []
        self._lane_link: list[int] = []
        self._link_lane_start: list[int] = []
        self._link_lane_count: list[int] = []
        for k, lid in enumerate(self._link_ids):
            link = network.links[lid]
            self._link_lane_start.append(len(self._lane_ids))
            self._link_lane_count.append(link.num_lanes)
            for lane in link.lanes:
                self._lane_ids.append(lane.lane_id)
                self._lane_link.append(k)
        self._lane_of = {lid: i for i, lid in enumerate(self._lane_ids)}
        self.NL = len(self._lane_ids)
        links = [network.links[lid] for lid in self._link_ids]
        self._storage = [link.storage for link in links]
        self._static_storage = list(self._storage)
        self._num_lanes = [link.num_lanes for link in links]
        self._lane_capacity = [link.lane_capacity for link in links]
        self._freeflow = [link.freeflow_ticks for link in links]
        self._length = [link.length for link in links]
        self._speed = [link.speed_limit for link in links]

        # Movement rows for the permission tables.
        self._move_keys = list(network.movements)
        self._move_row = {key: r for r, key in enumerate(self._move_keys)}
        self.M = len(self._move_keys)
        self.EXIT_ROW = self.M
        self.EMPTY_ROW = self.M + 1

        # Opposing-approach map (same construction as the object engine).
        opp_by_id: dict[str, str | None] = {}
        for node_id in network.signalized_nodes():
            incoming = network.nodes[node_id].incoming
            headings = {l: network.link_heading(l) for l in incoming}
            for link_id in incoming:
                hx, hy = headings[link_id]
                best = None
                for other in incoming:
                    if other == link_id:
                        continue
                    ox, oy = headings[other]
                    if hx * ox + hy * oy < -0.7:  # roughly head-on
                        best = other
                        break
                opp_by_id[link_id] = best
        self._opp = [
            self._link_of[opp_by_id[lid]]
            if opp_by_id.get(lid) is not None
            else -1
            for lid in self._link_ids
        ]

        # Candidate lanes (local lane indexes, reference order) per
        # movement, plus the in-link's lane capacity — the advance
        # phase's `_choose_lane` inputs.  The third slot is the lane
        # index when the movement has exactly one candidate (-1
        # otherwise): single-candidate movements dominate, and the
        # advance scan takes a loop-free path for them.
        self._move_cand: dict[tuple[int, int], tuple[int, list[int], int]] = {}
        for (in_link, out_link), movement in network.movements.items():
            k = self._link_of[in_link]
            lanes = [
                self._lane_of[lane.lane_id]
                for lane in network.lanes_for_movement(movement)
            ]
            self._move_cand[(k, self._link_of[out_link])] = (
                self._lane_capacity[k],
                lanes,
                lanes[0] if len(lanes) == 1 else -1,
            )

        # Flow statics shared across replicas (the env hands every
        # replica the same flow set; seeds differ).
        base = next(gen for gen in self._demands if gen is not None)
        self._flow_routes: list[tuple[int, ...]] = []
        self._flow_route_ids: list[list[str]] = []
        self._flow_mrows: list[tuple[int, ...]] = []
        self._flow_origin: list[int] = []
        for entry in base._flow_entries:
            route_ids = list(entry[1])
            route = tuple(self._link_of[lid] for lid in route_ids)
            rows = []
            for a, bnext in zip(route_ids[:-1], route_ids[1:]):
                row = self._move_row.get((a, bnext))
                if row is None:
                    raise SimulationError(
                        f"route uses undeclared movement ({a!r}, {bnext!r})"
                    )
                rows.append(row)
            rows.append(self.EXIT_ROW)
            self._flow_route_ids.append(route_ids)
            self._flow_routes.append(route)
            self._flow_mrows.append(tuple(rows))
            self._flow_origin.append(route[0])
        #: Per flow, per route position: the (lane_capacity, candidate
        #: lanes) entry the advance pass needs — saves the movement-key
        #: dict lookup per advancing vehicle.
        self._flow_cand: list[list[tuple[int, list[int], int] | None]] = [
            [
                self._move_cand[(route[i], route[i + 1])]
                for i in range(len(route) - 1)
            ]
            + [None]
            for route in self._flow_routes
        ]
        # Dense origin-link index: insertion state lives in flat arrays
        # over (replica, origin) instead of per-replica dicts.
        origin_links = sorted(set(self._flow_origin))
        self._origin_links = origin_links
        self._origin_of = {k: o for o, k in enumerate(origin_links)}
        self.NO = len(origin_links)
        self._flow_oidx = [self._origin_of[k] for k in self._flow_origin]
        for gen in self._demands:
            if gen is not None and len(gen._flow_entries) != len(
                base._flow_entries
            ):
                raise SimulationError(
                    "all replicas must share the same flow structure"
                )

    def _build_signal_state(self) -> None:
        network = self.network
        self._sig_nodes: list[str] = list(self.phase_plans)
        self._sig_of = {nid: s for s, nid in enumerate(self._sig_nodes)}
        self.NS = len(self._sig_nodes)
        self._plans = [self.phase_plans[nid] for nid in self._sig_nodes]

        # Permission tables: one column per (signal, phase) plus a
        # shared ALWAYS column (unsignalized nodes) and a shared YELLOW
        # column (nothing but queue exits may proceed).
        col_base: list[int] = []
        cols = 0
        for plan in self._plans:
            col_base.append(cols)
            cols += plan.num_phases
        self.ALWAYS_COL = cols
        self.YELLOW_COL = cols + 1
        self.NCOLS = cols + 2
        rows = self.M + 2
        green = np.zeros((rows, self.NCOLS), dtype=bool)
        left = np.zeros((rows, self.NCOLS), dtype=bool)
        green[self.EXIT_ROW, :] = True  # exiting from a queue is always allowed
        green[: self.M + 1, self.ALWAYS_COL] = True  # unsignalized nodes
        for s, nid in enumerate(self._sig_nodes):
            plan = self._plans[s]
            node_moves = network.movements_at(nid)
            for p, phase in enumerate(plan.phases):
                col = col_base[s] + p
                approach_green: set[str] = set()
                for key in phase.green_movements:
                    row = self._move_row.get(key)
                    if row is not None:
                        green[row, col] = True
                    movement = network.movements.get(key)
                    if movement is not None and movement.turn in (
                        TurnType.THROUGH,
                        TurnType.RIGHT,
                    ):
                        approach_green.add(key[0])
                if self.permissive_left:
                    for movement in node_moves:
                        if (
                            movement.turn is TurnType.LEFT
                            and movement.in_link in approach_green
                            and movement.key not in phase.green_movements
                        ):
                            left[self._move_row[movement.key], col] = True
        self._green_flat = green.ravel()
        self._left_flat = left.ravel()
        # Fused permission code per (movement row, column): 0 = blocked,
        # 1 = protected green, 2 = permissive-left candidate (dynamic
        # opposing check required).  One gather replaces two.
        self._code_flat = (
            green.astype(np.int8) + 2 * left.astype(np.int8)
        ).ravel()
        self._col_base = np.asarray(col_base, dtype=np.int64)

        # Per-lane controlling signal (NS = "no signal" sentinel mapping
        # to the ALWAYS column).
        lane_sig = np.full(self.NL, self.NS, dtype=np.int64)
        for l, k in enumerate(self._lane_link):
            to_node = network.links[self._link_ids[k]].to_node
            s = self._sig_of.get(to_node)
            if s is not None:
                lane_sig[l] = s
        self._lane_sig = lane_sig

        # Lane indexes per signal for the startup-lost-time write.
        self._sig_lanes: list[np.ndarray] = []
        for nid in self._sig_nodes:
            idx = [
                self._lane_of[lane.lane_id]
                for link_id in network.nodes[nid].incoming
                for lane in network.links[link_id].lanes
            ]
            self._sig_lanes.append(np.asarray(idx, dtype=np.intp))

        B = self.batch
        # One fused index for the all-(replica, signal) startup-penalty
        # write — the common case when synchronized fixed-time programs
        # switch every signal of every replica on the same tick.
        if self._sig_lanes:
            all_sig = np.concatenate(self._sig_lanes)
            self._penalty_idx_full = (
                np.arange(B, dtype=np.intp)[:, None] * self.NL + all_sig[None, :]
            ).ravel()
        else:
            self._penalty_idx_full = np.empty(0, dtype=np.intp)
        self._cur = np.zeros((B, self.NS), dtype=np.int64)
        self._pend = np.full((B, self.NS), -1, dtype=np.int64)
        self._yel = np.zeros((B, self.NS), dtype=np.int64)
        self._tip = np.zeros((B, self.NS), dtype=np.int64)
        #: (b, s) pairs whose instant commit (yellow_time == 0) awaits
        #: its startup-lost-time application at the next signal update.
        self._pending_just: list[tuple[int, int]] = []
        self._eff_ext = np.empty((B, self.NS + 1), dtype=np.int64)
        #: Cached per-lane permission column gather; invalidated whenever
        #: any signal's (current phase, yellow) state may have changed.
        self._lane_cols: np.ndarray | None = None

    def _build_dynamic_state(self) -> None:
        B, NL, LK, NO = self.batch, self.NL, self.LK, self.NO
        self._queues: list[deque] = [deque() for _ in range(B * NL)]
        self._running: list[list[list[int]]] = [
            [[] for _ in range(LK)] for _ in range(B)
        ]
        self._occ: list[list[int]] = [[0] * LK for _ in range(B)]
        self._finished: list[list[int]] = [[] for _ in range(B)]
        self.teleport_count = [0] * B
        self._inserted_cnt = [0] * B
        self._finished_cnt = [0] * B

        self._credit = np.zeros(B * NL, dtype=np.float64)
        self._head_row = np.full(B * NL, self.EMPTY_ROW, dtype=np.int64)
        self._head_anchor = np.full(B * NL, _BIG, dtype=np.int64)
        #: Scalar caches of each lane head's vehicle id and destination
        #: link (-1 = route exit); valid only where _head_row is not the
        #: EMPTY_ROW sentinel.
        self._head_vid = [0] * (B * NL)
        self._head_dst = [0] * (B * NL)
        self._narr_after = np.full(B * LK, _BIG, dtype=np.int64)
        # Scratch buffers reused by the per-tick vectorized filters.
        self._buf_idx = np.empty(B * NL, dtype=np.int64)
        self._buf_code = np.empty(B * NL, dtype=np.int8)
        self._buf_cand = np.empty(B * NL, dtype=bool)
        self._buf_ge = np.empty(B * NL, dtype=bool)
        self._buf_mask = np.empty(B * LK, dtype=bool)
        #: (b, link) flat indexes whose lanes popped a head this tick;
        #: consumed (and cleared) by the same tick's advance pass.
        self._dirty_links: list[int] = []
        #: Blocked (lane-choice-failed) vehicle count per (b, link).  A
        #: queue pop only needs to re-wake its link's advance pass when
        #: this is non-zero — pops can't affect anything else there.
        self._held_cnt = [0] * (B * LK)

        # Insertion state, dense over (replica, origin): pending-vehicle
        # deques and the next tick the origin can possibly insert
        # (credit accrual is deterministic, so blocked-on-credit origins
        # sleep until then).  Origin order is immaterial: inserts to
        # distinct links are independent, same-link arrivals share one
        # deque.
        self._pend_dq: list[deque] = [deque() for _ in range(B * NO)]
        self._ins_wake = [int(_BIG)] * (B * NO)
        # Credit the origin will hold when its wake tick arrives.  Wake
        # ticks are found by simulating the per-tick min-capped accrual,
        # so the end credit is known at sleep time; storing it makes the
        # wake-time replay a single read.
        self._ins_cwake = [0.0] * (B * NO)
        rate = self.saturation_rate
        self._origin_rn = [rate * self._num_lanes[k] for k in self._origin_links]
        self._origin_fn = [float(self._num_lanes[k]) for k in self._origin_links]
        #: Ticks for a fresh (zero-credit) origin to accrue its first
        #: unit of insertion credit, and the exact credit it holds then,
        #: per dense origin index.
        m0 = []
        c0 = []
        for o in range(NO):
            rn, fn = self._origin_rn[o], self._origin_fn[o]
            if rn <= 0.0:
                m0.append(1 << 60)
                c0.append(0.0)
                continue
            c, m = 0.0, 0
            while c < 1.0:
                m += 1
                c = min(c + rn, fn)
            m0.append(m)
            c0.append(c)
        self._origin_m0 = m0
        self._origin_c0 = c0
        # Wake ticks are at most max(m0, 1) + 1 ahead (blocked origins
        # re-wake next tick; credit re-accrual from >= 0.0 takes at most
        # m0 ticks), so due origins live in a small ring of per-tick
        # buckets instead of a scanned active set.  Ring entries are
        # validated against _ins_wake on drain, so a stale entry (the
        # origin drained before its slot came up) is skipped for free.
        self._ins_ring_len = max([m for m in m0 if m < (1 << 60)] + [1]) + 2
        self._ins_ring: list[list[int]] = [
            [] for _ in range(self._ins_ring_len)
        ]

    # ------------------------------------------------------------------
    # Construction: demand precompute
    # ------------------------------------------------------------------
    def _precompute_demand(self) -> None:
        """Replay every generator's ``emit`` arithmetic up front.

        Rates are a pure function of flow statics shared by all
        replicas, so the per-tick rate schedule is computed once.  Each
        stochastic replica then makes a single vectorized Poisson call
        over the positive-rate (tick-major, flow-minor) sequence — the
        exact order ``emit`` would have drawn scalars in, consuming the
        generator's bitstream identically.  Deterministic generators
        replay the fractional accumulator once (no RNG; identical for
        every replica).
        """
        base = next((gen for gen in self._demands if gen is not None), None)
        self._v_flow: list[list[int]] = []
        self._arr_t: list[list[int]] = []
        self._arr_ptr = [0] * self.batch
        per_replica_cols: list[int] = []
        if base is None:
            self._v_flow = [[] for _ in range(self.batch)]
            self._arr_t = [[] for _ in range(self.batch)]
            per_replica_cols = [0] * self.batch
        else:
            t_end = int(math.floor(max(e[3] for e in base._flow_entries)))
            lam_t: list[int] = []
            lam_f: list[int] = []
            lam_v: list[float] = []
            det_t: list[int] = []
            det_f: list[int] = []
            det_c: list[int] = []
            # Deterministic accumulators live on the Flow objects; start
            # the replay from their current state (zero after reset()).
            accumulators = [e[0]._accumulator for e in base._flow_entries]
            for t in range(0, t_end + 1):
                tf = float(t)
                for f, entry in enumerate(base._flow_entries):
                    _, _, t_first, t_last, r_last, segments = entry
                    if tf < t_first or tf > t_last:
                        continue
                    for t0, t1, r0, r1 in segments:
                        if t0 <= tf <= t1:
                            if t1 == t0:
                                rate = r1
                            else:
                                rate = r0 + ((tf - t0) / (t1 - t0)) * (r1 - r0)
                            break
                    else:
                        rate = r_last if tf == t_last else 0.0
                    per_second = rate / 3600.0
                    if per_second <= 0.0:
                        continue
                    lam_t.append(t)
                    lam_f.append(f)
                    lam_v.append(per_second)
                    acc = accumulators[f] + per_second
                    count = int(acc)
                    accumulators[f] = acc - count
                    det_t.append(t)
                    det_f.append(f)
                    det_c.append(count)
            lam_arr = np.asarray(lam_v, dtype=np.float64)
            pair_t = np.asarray(lam_t, dtype=np.int64)
            pair_f = np.asarray(lam_f, dtype=np.int64)
            det_counts = np.asarray(det_c, dtype=np.int64)
            for gen in self._demands:
                if gen is None:
                    self._v_flow.append([])
                    self._arr_t.append([])
                    per_replica_cols.append(0)
                    continue
                if gen.stochastic:
                    counts = gen._rng.poisson(lam_arr).astype(np.int64)
                else:
                    counts = det_counts
                arr_t = np.repeat(pair_t, counts)
                arr_f = np.repeat(pair_f, counts)
                self._arr_t.append(arr_t.tolist())
                self._v_flow.append(arr_f.tolist())
                per_replica_cols.append(int(arr_t.size))

        # Pre-sized per-vehicle columns (vehicle id == arrival index, so
        # the created tick and flow columns are the arrival arrays).
        # State, lane, and links-travelled are NOT stored: the hot loops
        # would pay one write per transition for introspection-only
        # data, so views derive them — state from (inserted, finished,
        # anchor), links from route index, lane by queue membership.
        self._v_ridx = [[0] * n for n in per_replica_cols]
        self._v_inserted = [[-1] * n for n in per_replica_cols]
        self._v_finished = [[-1] * n for n in per_replica_cols]
        self._v_run_start = [[0] * n for n in per_replica_cols]
        self._v_run_arrival = [[0] * n for n in per_replica_cols]
        self._v_wait_base = [[0] * n for n in per_replica_cols]
        self._v_wait_link = [[0] * n for n in per_replica_cols]
        self._v_anchor = [[-1] * n for n in per_replica_cols]
        # One tuple per replica bundling every per-replica container the
        # hot loops touch: rebinding locals on a replica switch is one
        # index + unpack instead of a dozen attribute lookups.  All the
        # bundled objects are mutated in place and never reassigned.
        self._repl_cols = [
            (
                self._v_flow[b],
                self._v_ridx[b],
                self._v_anchor[b],
                self._v_wait_base[b],
                self._v_wait_link[b],
                self._v_run_start[b],
                self._v_run_arrival[b],
                self._v_finished[b],
                self._occ[b],
                self._running[b],
                self._finished[b],
            )
            for b in range(self.batch)
        ]

    # ------------------------------------------------------------------
    # Control surface
    # ------------------------------------------------------------------
    def set_capacity_factor(self, link_id: str, factor: float) -> None:
        """Scale a link's effective storage across every replica.

        Same semantics and arithmetic as
        :meth:`repro.sim.engine.Simulation.set_capacity_factor` —
        ``int(static_storage * factor)`` — so incident trajectories stay
        bit-exact with the object engine.  Both the discharge spillback
        check and the insertion loop re-read storage on every attempt
        (blocked origins re-wake each tick), so mid-run changes take
        effect immediately.
        """
        k = self._link_of.get(link_id)
        if k is None:
            raise SimulationError(f"unknown link {link_id!r}")
        if not 0.0 <= factor <= 1.0:
            raise SimulationError(
                f"capacity factor must lie in [0, 1], got {factor}"
            )
        self._storage[k] = int(self._static_storage[k] * factor)
        if factor >= 1.0:
            self.capacity_factors.pop(link_id, None)
        else:
            self.capacity_factors[link_id] = factor

    def request_phase(self, b: int, node_id: str, phase_index: int) -> None:
        """Replica-scalar twin of :meth:`SignalState.request_phase`."""
        s = self._sig_of.get(node_id)
        if s is None:
            raise SimulationError(f"unknown signalized node {node_id!r}")
        plan = self._plans[s]
        if not 0 <= phase_index < plan.num_phases:
            raise NetworkError(
                f"phase index {phase_index} out of range for node "
                f"{plan.node_id!r} ({plan.num_phases} phases)"
            )
        if phase_index == self._cur[b, s] and self._yel[b, s] == 0:
            return
        self._lane_cols = None
        self._pend[b, s] = phase_index
        if self._yel[b, s] == 0:
            if self.yellow_time == 0:
                self._cur[b, s] = phase_index
                self._pend[b, s] = -1
                self._tip[b, s] = 0
                self._pending_just.append((b, s))
            else:
                self._yel[b, s] = self.yellow_time

    def request_phases(self, req: np.ndarray) -> None:
        """Vectorized phase request for all replicas.

        ``req`` is ``(NS,)`` (same request for every replica — the
        fixed-time case) or ``(B, NS)``; semantics per cell match
        :meth:`SignalState.request_phase`.  Phase indices are assumed
        in range (callers validate against the plans).
        """
        cur, pend, yel = self._cur, self._pend, self._yel
        apply = (req != cur) | (yel != 0)
        if not apply.any():
            return  # every cell is a same-phase-no-yellow no-op
        self._lane_cols = None
        if self.yellow_time == 0:
            # yel is identically zero: every applied request commits now.
            np.copyto(cur, req, where=apply)
            self._tip[apply] = 0
            pairs = np.nonzero(apply)
            self._pending_just.extend(
                (int(b), int(s)) for b, s in zip(*pairs)
            )
        else:
            np.copyto(pend, req, where=apply)
            start = apply & (yel == 0)
            yel[start] = self.yellow_time

    def run_fixed_time(
        self, programs: dict[str, FixedTimeProgram], ticks: int
    ) -> None:
        """Drive all replicas' signals from fixed-time programs.

        The steady-state tick allocates only acyclic objects (ints,
        lists, deques), so the generational collector's periodic scans
        over the engine's large live heap are pure overhead — pause it
        for the duration of the batch run.
        """
        was_enabled = gc.isenabled()
        if was_enabled:
            gc.disable()
        try:
            self._run_fixed_time(programs, ticks)
        finally:
            if was_enabled:
                gc.enable()

    def _run_fixed_time(
        self, programs: dict[str, FixedTimeProgram], ticks: int
    ) -> None:
        progs = [programs[nid] for nid in self._sig_nodes]
        # Hoist the per-tick requests into one (cycle, NS) table when the
        # programs' common cycle is reasonable (always, for the grids).
        cycle = 1
        for prog in progs:
            c = prog.cycle_length
            if not isinstance(c, int) or cycle > 36000:
                cycle = 0
                break
            cycle = cycle * c // math.gcd(cycle, c)
        if 0 < cycle <= 36000:
            table = np.empty((cycle, self.NS), dtype=np.int64)
            for t in range(cycle):
                for s, prog in enumerate(progs):
                    table[t, s] = prog.phase_at(t)
            # Ticks where no signal's requested phase differs from the
            # previous tick's are no-op requests (already current or
            # already pending) and can be skipped entirely.
            changed = [
                bool((table[t] != table[t - 1]).any()) for t in range(cycle)
            ]
            first = True
            for _ in range(ticks):
                if first or changed[self.time % cycle]:
                    self.request_phases(table[self.time % cycle])
                    first = False
                self._step_once()
            return
        req = np.zeros(self.NS, dtype=np.int64)
        for _ in range(ticks):
            t = self.time
            for s, prog in enumerate(progs):
                req[s] = prog.phase_at(t)
            self.request_phases(req)
            self._step_once()

    def step(self, ticks: int = 1) -> None:
        """Advance every replica by ``ticks`` seconds."""
        for _ in range(ticks):
            self._step_once()

    def view(self, b: int) -> "SoAReplicaView":
        """Simulation-API view over replica ``b``."""
        if not 0 <= b < self.batch:
            raise SimulationError(f"replica index {b} out of range")
        return SoAReplicaView(self, b)

    # ------------------------------------------------------------------
    # Core stepping
    # ------------------------------------------------------------------
    def _step_once(self) -> None:
        if self.incidents is not None:
            self.incidents.apply(self)
        self._update_signals()
        self._discharge()
        if self.teleport_time is not None:
            self._teleport_stuck()
        self._advance()
        self._insert_pending()
        self._generate_demand()
        self.time += 1

    def _update_signals(self) -> None:
        yel = self._yel
        tip = self._tip
        just: list[tuple[int, int]] = self._pending_just
        full_commit = False
        if yel.any():
            self._lane_cols = None
            in_yel = yel > 0
            np.subtract(yel, in_yel, out=yel, casting="unsafe")
            np.add(tip, 1, out=tip)
            np.subtract(tip, in_yel, out=tip, casting="unsafe")
            commit = in_yel & (yel == 0)
            if commit.any():
                np.copyto(self._cur, self._pend, where=commit)
                self._pend[commit] = -1
                tip[commit] = 0
                if not just and commit.all():
                    full_commit = True
                else:
                    just = just + [
                        (int(b), int(s)) for b, s in zip(*np.nonzero(commit))
                    ]
        else:
            np.add(tip, 1, out=tip)
        self._pending_just = []
        penalty = self.startup_lost_time * self.saturation_rate
        if penalty > 0:
            if full_commit:
                self._credit[self._penalty_idx_full] = -penalty
            elif just:
                NL = self.NL
                credit = self._credit
                sig_lanes = self._sig_lanes
                for b, s in just:
                    credit[b * NL + sig_lanes[s]] = -penalty

    def _discharge(self) -> None:
        NS = self.NS
        credit = self._credit
        credit += self.saturation_rate
        np.minimum(credit, 1.0, out=credit)
        # Effective permission column per lane: the controlling signal's
        # current phase, the shared yellow column while yellow runs, or
        # the ALWAYS column for unsignalized nodes.  Cached between
        # signal-state changes.
        cols = self._lane_cols
        if cols is None:
            eff_ext = self._eff_ext
            eff = eff_ext[:, :NS]
            np.add(self._col_base, self._cur, out=eff)
            eff[self._yel > 0] = self.YELLOW_COL
            eff_ext[:, NS] = self.ALWAYS_COL
            # Fancy indexing copies, so the cache doesn't alias _eff_ext.
            cols = self._lane_cols = eff_ext[:, self._lane_sig].reshape(-1)
        idx = self._buf_idx
        np.multiply(self._head_row, self.NCOLS, out=idx)
        idx += cols
        code = self._code_flat.take(idx, out=self._buf_code)
        cand = np.not_equal(code, 0, out=self._buf_cand)
        cand &= np.greater_equal(credit, 1.0, out=self._buf_ge)
        active = np.flatnonzero(cand)
        if active.size:
            self._discharge_events(active.tolist(), code[active].tolist())
        # Lanes whose queue ended the phase empty reset their credit,
        # exactly like the reference store `credit if queue else 0.0`.
        empty = np.equal(self._head_row, self.EMPTY_ROW, out=self._buf_ge)
        credit[empty] = 0.0

    def _discharge_events(self, active: list[int], codes: list[int]) -> None:
        """Resolve pop attempts in reference lane order, live state."""
        NL = self.NL
        LK = self.LK
        t = self.time
        queues = self._queues
        lane_link = self._lane_link
        storage = self._storage
        freeflow = self._freeflow
        routes = self._flow_routes
        opp = self._opp
        popped: list[int] = []
        new_row: list[int] = []
        new_anchor: list[int] = []
        narr_idx: list[int] = []
        narr_val: list[int] = []
        head_row = self._head_row
        head_anchor = self._head_anchor
        head_vid = self._head_vid
        head_dst = self._head_dst
        narr_after = self._narr_after
        mrows = self._flow_mrows
        dirty = self._dirty_links
        held_cnt = self._held_cnt
        empty_row = self.EMPTY_ROW
        b = -1
        repl_cols = self._repl_cols
        fin_cnt = self._finished_cnt
        for i, cv in zip(active, codes):
            nb = i // NL
            if nb != b:
                b = nb
                (
                    vflow, vridx, vanchor, vwait, vwlink,
                    vrs, vra, vfin, occ_b, running_b, finished_b,
                ) = repl_cols[b]
                jbase = b * LK
            # Both rejection tests (spillback, opposing gap) are pure
            # reads, so checking storage before permission is exact;
            # cheapest check first keeps blocked revisits short.
            dst = head_dst[i]
            if dst >= 0 and occ_b[dst] >= storage[dst]:
                continue  # spillback: downstream full, credit stays banked
            l = i - b * NL
            k = lane_link[l]
            if cv == 2:
                # Permissive left: dynamic opposing-approach gap check.
                ol = opp[k]
                if ol >= 0 and not self._opposing_clear(b, ol, t):
                    continue  # head-of-line blocking; credit stays banked
            vid = head_vid[i]
            q = queues[i]
            q.popleft()
            occ_b[k] -= 1
            if held_cnt[jbase + k]:
                dirty.append(jbase + k)
            if dst < 0:
                # Inlined _finish.
                anchor = vanchor[vid]
                if anchor >= 0:
                    waited = t - anchor
                    vwait[vid] += waited
                    vwlink[vid] = waited
                    vanchor[vid] = -1
                vfin[vid] = t
                finished_b.append(vid)
                fin_cnt[b] += 1
            else:
                # Inlined _enter_link (wait_link stays 0: only a finish
                # ever writes it non-zero).
                vridx[vid] += 1
                vrs[vid] = t
                arr = t + freeflow[dst]
                vra[vid] = arr
                anchor = vanchor[vid]
                if anchor >= 0:
                    vwait[vid] += t - anchor
                    vanchor[vid] = -1
                running_b[dst].append(vid)
                occ_b[dst] += 1
                narr_idx.append(jbase + dst)
                narr_val.append(arr)
            popped.append(i)
            if q:
                nh = q[0]
                fl = vflow[nh]
                ri = vridx[nh]
                new_row.append(mrows[fl][ri])
                new_anchor.append(vanchor[nh])
                head_vid[i] = nh
                rt = routes[fl]
                head_dst[i] = rt[ri + 1] if ri + 1 < len(rt) else -1
            else:
                new_row.append(empty_row)
                new_anchor.append(int(_BIG))
        if popped:
            # Deferred scalar writes, flushed as single fancy updates.
            head_row[popped] = new_row
            head_anchor[popped] = new_anchor
            self._credit[popped] -= 1.0
        if narr_idx:
            # Same-link entries this tick share one arrival (t +
            # freeflow), so duplicate indices are harmless under a
            # gather-min-scatter.
            narr_after[narr_idx] = np.minimum(narr_after[narr_idx], narr_val)

    def _opposing_clear(self, b: int, ol: int, t: int) -> bool:
        start = self._link_lane_start[ol]
        base = b * self.NL + start
        queues = self._queues
        for off in range(self._link_lane_count[ol]):
            if queues[base + off]:
                return False
        length = self._length[ol]
        speed = self._speed[ol]
        gap = self.permissive_gap_m
        run_start = self._v_run_start[b]
        for vid in self._running[b][ol]:
            travelled = speed * (t - run_start[vid])
            if length - travelled <= gap:
                return False
        return True

    def _teleport_stuck(self) -> None:
        t = self.time
        stuck = np.flatnonzero((t - self._head_anchor) > self.teleport_time)
        if not stuck.size:
            return
        NL, LK = self.NL, self.LK
        queues = self._queues
        head_row = self._head_row
        head_anchor = self._head_anchor
        head_vid = self._head_vid
        head_dst = self._head_dst
        mrows = self._flow_mrows
        routes = self._flow_routes
        for i in stuck.tolist():
            b = i // NL
            l = i - b * NL
            q = queues[i]
            vid = q.popleft()
            k = self._lane_link[l]
            self._occ[b][k] -= 1
            self._dirty_links.append(b * LK + k)
            self.teleport_count[b] += 1
            vflow = self._v_flow[b]
            vridx = self._v_ridx[b]
            fl = vflow[vid]
            ri = vridx[vid]
            route = routes[fl]
            if ri + 1 == len(route):
                self._finish(b, vid, t)
            else:
                # Teleports ignore storage (documented overflow).
                self._enter_link(b, vid, route[ri + 1], t)
            if q:
                nh = q[0]
                fl2 = vflow[nh]
                ri2 = vridx[nh]
                head_row[i] = mrows[fl2][ri2]
                head_anchor[i] = self._v_anchor[b][nh]
                head_vid[i] = nh
                rt = routes[fl2]
                head_dst[i] = rt[ri2 + 1] if ri2 + 1 < len(rt) else -1
            else:
                head_row[i] = self.EMPTY_ROW
                head_anchor[i] = _BIG

    def _advance(self) -> None:
        t = self.time
        mask = np.less_equal(self._narr_after, t, out=self._buf_mask)
        dl = self._dirty_links
        if dl:
            mask[dl] = True
            dset: frozenset[int] | tuple = frozenset(dl)
            self._dirty_links = []
        else:
            dset = ()
        active = np.flatnonzero(mask)
        if not active.size:
            return
        LK = self.LK
        NL = self.NL
        queues = self._queues
        flow_cand = self._flow_cand
        routes = self._flow_routes
        mrows = self._flow_mrows
        narr_after = self._narr_after
        head_row = self._head_row
        head_anchor = self._head_anchor
        head_vid = self._head_vid
        head_dst = self._head_dst
        held_cnt = self._held_cnt
        new_qi: list[int] = []
        new_row: list[int] = []
        cell_j: list[int] = []
        cell_narr: list[int] = []
        b = -1
        repl_cols = self._repl_cols
        fin_cnt = self._finished_cnt
        for j in active.tolist():
            nb = j // LK
            if nb != b:
                b = nb
                (
                    vflow, vridx, vanchor, vwait, vwlink,
                    _vrs, arrival, vfin, occ_b, running_b, finished_b,
                ) = repl_cols[b]
                qbase = b * NL
            k = j - b * LK
            lst = running_b[k]
            n_lst = len(lst)
            if not held_cnt[j] or j in dset:
                start = 0
            else:
                # No pop touched this link's lanes this tick, so every
                # held vehicle's candidate lanes are still full — skip
                # their (guaranteed-failing) scans and keep them held.
                start = held_cnt[j]
            new_held: list[int] = []
            moved = False
            boundary = n_lst
            for pos in range(start, n_lst):
                vid = lst[pos]
                if arrival[vid] > t:
                    boundary = pos
                    break
                fl = vflow[vid]
                ri = vridx[vid]
                cand = flow_cand[fl][ri]
                if cand is None:
                    # Last route link: inlined _finish.
                    moved = True
                    occ_b[k] -= 1
                    anchor = vanchor[vid]
                    if anchor >= 0:
                        waited = t - anchor
                        vwait[vid] += waited
                        vwlink[vid] = waited
                        vanchor[vid] = -1
                    vfin[vid] = t
                    finished_b.append(vid)
                    fin_cnt[b] += 1
                    continue
                cap, lanes, lone = cand
                if lone >= 0:
                    best = lone
                    qq = queues[qbase + lone]
                    if len(qq) >= cap:
                        new_held.append(vid)  # the only candidate is full
                        continue
                else:
                    best = -1
                    best_len = 0
                    for lo in lanes:
                        qlen = len(queues[qbase + lo])
                        if qlen >= cap:
                            continue
                        if best < 0 or qlen < best_len:
                            best, best_len = lo, qlen
                    if best < 0:
                        new_held.append(vid)  # all candidate lanes full
                        continue
                    qq = queues[qbase + best]
                moved = True
                vanchor[vid] = t
                qq.append(vid)
                if len(qq) == 1:
                    qi = qbase + best
                    new_qi.append(qi)
                    new_row.append(mrows[fl][ri])
                    head_vid[qi] = vid
                    # cand is not None, so ri+1 is a valid route position.
                    head_dst[qi] = routes[fl][ri + 1]
            # Every scanned vehicle moved, finished, or re-held in
            # order, so the list only needs rebuilding when something
            # actually left it.
            cell_j.append(j)
            if not moved:
                held_cnt[j] = start + len(new_held)
                cell_narr.append(
                    arrival[lst[boundary]] if boundary < n_lst else int(_BIG)
                )
            elif not new_held and start == 0:
                del lst[:boundary]
                held_cnt[j] = 0
                cell_narr.append(arrival[lst[0]] if lst else int(_BIG))
            else:
                held = lst[:start]
                held.extend(new_held)
                nheld = len(held)
                held.extend(lst[boundary:])
                running_b[k] = held
                held_cnt[j] = nheld
                if len(held) > nheld:
                    cell_narr.append(arrival[held[nheld]])
                else:
                    cell_narr.append(int(_BIG))
        # Deferred scalar writes, flushed as single fancy updates (each
        # cell and each newly headed lane appears at most once).
        narr_after[cell_j] = cell_narr
        if new_qi:
            head_row[new_qi] = new_row
            head_anchor[new_qi] = t

    def _insert_pending(self) -> None:
        t = self.time
        ring = self._ins_ring
        R = self._ins_ring_len
        due = ring[t % R]
        if not due:
            return
        ring[t % R] = []
        # Origin order is immaterial (distinct links are independent),
        # but replica-sorted order keeps the per-replica column unpack
        # amortized across consecutive visits.
        due.sort()
        wake = self._ins_wake
        NO = self.NO
        storage = self._storage
        olinks = self._origin_links
        orn = self._origin_rn
        ofn = self._origin_fn
        cwake = self._ins_cwake
        pend_dq = self._pend_dq
        freeflow = self._freeflow
        narr_after = self._narr_after
        LK = self.LK
        repl_cols = self._repl_cols
        ins_cnt = self._inserted_cnt
        b = -1
        narr_idx: list[int] = []
        narr_val: list[int] = []
        for g in due:
            if wake[g] != t:
                continue  # stale ring entry (defensive; see init)
            nb = g // NO
            if nb != b:
                b = nb
                (
                    _vflow, vridx, vanchor, vwait, vwlink,
                    vrs, vra, _vfin, occ_b, running_b, _finished_b,
                ) = repl_cols[b]
                vins = self._v_inserted[b]
            o = g - b * NO
            k = olinks[o]
            dq = pend_dq[g]
            # The wake tick was found by simulating the per-tick
            # min-capped accrual (not associative in float, so no fused
            # multiply), and the resulting credit was stored with it.
            credit = cwake[g]
            blocked = False
            while dq and credit >= 1.0:
                if occ_b[k] >= storage[k]:
                    # Same clamp as Simulation._insert_pending: banked
                    # insertion credit caps at one vehicle while the
                    # origin link is spillback-blocked.
                    credit = 1.0
                    blocked = True
                    break
                vid = dq.popleft()
                vins[vid] = t
                ins_cnt[b] += 1
                # Inlined _enter_link onto route link 0 (anchor is -1
                # and wait_link 0 for a never-inserted vehicle).
                vridx[vid] = 0
                vrs[vid] = t
                arr = t + freeflow[k]
                vra[vid] = arr
                running_b[k].append(vid)
                occ_b[k] += 1
                narr_idx.append(b * LK + k)
                narr_val.append(arr)
                credit -= 1.0
            if dq:
                rn = orn[o]
                if blocked:
                    wake[g] = t + 1  # storage may free any tick
                    cwake[g] = min(credit + rn, ofn[o])
                    ring[(t + 1) % R].append(g)
                elif rn > 0.0:
                    # Sleep until the exact tick credit first reaches
                    # 1.0 again under per-tick accrual arithmetic.
                    fn = ofn[o]
                    c = credit
                    m = 0
                    while c < 1.0:
                        m += 1
                        c = min(c + rn, fn)
                    wake[g] = t + m
                    cwake[g] = c
                    ring[(t + m) % R].append(g)
                else:
                    wake[g] = int(_BIG)  # credit can never accrue
            else:
                wake[g] = int(_BIG)
        if narr_idx:
            # Same-link inserts this tick share one arrival, so
            # duplicate indices are harmless under gather-min-scatter.
            narr_after[narr_idx] = np.minimum(narr_after[narr_idx], narr_val)

    def _generate_demand(self) -> None:
        t = self.time
        NO = self.NO
        m0 = self._origin_m0
        c0 = self._origin_c0
        cwake = self._ins_cwake
        wake = self._ins_wake
        pend_dq = self._pend_dq
        oidx = self._flow_oidx
        for b in range(self.batch):
            at = self._arr_t[b]
            p = self._arr_ptr[b]
            n = len(at)
            if p >= n or at[p] != t:
                continue
            gbase = b * NO
            flows = self._v_flow[b]
            while p < n and at[p] == t:
                o = oidx[flows[p]]
                g = gbase + o
                dq = pend_dq[g]
                if not dq:
                    # Fresh pending entry: credit is 0.0 (reset on
                    # drain), so the first possible insert tick and the
                    # credit held then are pure functions of the
                    # origin's accrual rate.
                    m = m0[o]
                    wake[g] = t + m
                    cwake[g] = c0[o]
                    if m < self._ins_ring_len:
                        self._ins_ring[(t + m) % self._ins_ring_len].append(g)
                dq.append(p)
                p += 1
            self._arr_ptr[b] = p

    # ------------------------------------------------------------------
    # Scalar vehicle transitions (exact twins of the reference ops)
    # ------------------------------------------------------------------
    def _enter_link(self, b: int, vid: int, dst: int, t: int) -> None:
        self._v_ridx[b][vid] += 1
        self._v_run_start[b][vid] = t
        arr = t + self._freeflow[dst]
        self._v_run_arrival[b][vid] = arr
        anchor = self._v_anchor[b][vid]
        if anchor >= 0:
            self._v_wait_base[b][vid] += t - anchor
            self._v_anchor[b][vid] = -1
        self._running[b][dst].append(vid)
        self._occ[b][dst] += 1
        j = b * self.LK + dst
        if arr < self._narr_after[j]:
            self._narr_after[j] = arr

    def _finish(self, b: int, vid: int, t: int) -> None:
        anchor = self._v_anchor[b][vid]
        if anchor >= 0:
            waited = t - anchor
            self._v_wait_base[b][vid] += waited
            self._v_wait_link[b][vid] = waited
            self._v_anchor[b][vid] = -1
        self._v_finished[b][vid] = t
        self._finished[b].append(vid)
        self._finished_cnt[b] += 1

    # ------------------------------------------------------------------
    # Replica introspection primitives (used by the views)
    # ------------------------------------------------------------------
    def _lane_index_or_raise(self, lane_id: str) -> int:
        l = self._lane_of.get(lane_id)
        if l is None:
            raise SimulationError(f"unknown lane id {lane_id!r}")
        return l

    def _link_index_or_raise(self, link_id: str) -> int:
        k = self._link_of.get(link_id)
        if k is None:
            raise SimulationError(f"unknown link id {link_id!r}")
        return k


class _VehicleView:
    """Read-only :class:`Vehicle`-shaped view over one SoA vehicle."""

    __slots__ = ("_e", "_b", "vehicle_id")

    def __init__(self, engine: SoAEngine, b: int, vid: int) -> None:
        self._e = engine
        self._b = b
        self.vehicle_id = vid

    @property
    def route(self) -> list[str]:
        return self._e._flow_route_ids[self._e._v_flow[self._b][self.vehicle_id]]

    @property
    def created(self) -> int:
        return self._e._arr_t[self._b][self.vehicle_id]

    @property
    def state(self) -> VehicleState:
        # Derived: the engine does not store a state column (it would
        # cost one write per transition for introspection-only data).
        e, b, vid = self._e, self._b, self.vehicle_id
        if e._v_finished[b][vid] >= 0:
            return VehicleState.FINISHED
        if e._v_inserted[b][vid] < 0:
            return VehicleState.PENDING
        if e._v_anchor[b][vid] >= 0:
            return VehicleState.QUEUED
        return VehicleState.RUNNING

    @property
    def route_index(self) -> int:
        return self._e._v_ridx[self._b][self.vehicle_id]

    @property
    def inserted(self) -> int | None:
        value = self._e._v_inserted[self._b][self.vehicle_id]
        return None if value < 0 else value

    @property
    def finished(self) -> int | None:
        value = self._e._v_finished[self._b][self.vehicle_id]
        return None if value < 0 else value

    @property
    def run_start(self) -> int:
        return self._e._v_run_start[self._b][self.vehicle_id]

    @property
    def run_arrival(self) -> int:
        return self._e._v_run_arrival[self._b][self.vehicle_id]

    @property
    def lane_id(self) -> str | None:
        # Derived by queue membership: a queued vehicle sits in exactly
        # one lane of its current link.
        e, b, vid = self._e, self._b, self.vehicle_id
        if self.state is not VehicleState.QUEUED:
            return None
        k = e._link_of[self.current_link]
        base = b * e.NL + e._link_lane_start[k]
        for off in range(e._link_lane_count[k]):
            if vid in e._queues[base + off]:
                return e._lane_ids[e._link_lane_start[k] + off]
        return None

    @property
    def links_travelled(self) -> int:
        # Derived: every link entry advances the route index by one.
        e, b, vid = self._e, self._b, self.vehicle_id
        if e._v_inserted[b][vid] < 0:
            return 0
        return e._v_ridx[b][vid] + 1

    @property
    def wait_total(self) -> int:
        e, b, vid = self._e, self._b, self.vehicle_id
        anchor = e._v_anchor[b][vid]
        base = e._v_wait_base[b][vid]
        if anchor >= 0:
            return base + e.time - anchor
        return base

    @property
    def wait_current_link(self) -> int:
        e, b, vid = self._e, self._b, self.vehicle_id
        anchor = e._v_anchor[b][vid]
        if anchor >= 0:
            return e.time - anchor
        return e._v_wait_link[b][vid]

    @property
    def current_link(self) -> str:
        return self.route[self.route_index]

    @property
    def on_last_link(self) -> bool:
        return self.route_index == len(self.route) - 1

    @property
    def next_link(self) -> str | None:
        route = self.route
        index = self.route_index + 1
        return route[index] if index < len(route) else None

    def travel_time(self, now: int) -> int:
        end = self.finished
        if end is None:
            end = now
        return max(0, end - self.created)


class _SignalView:
    """Read/write :class:`SignalState`-shaped view over one replica signal."""

    __slots__ = ("_e", "_b", "_s", "plan", "yellow_time")

    def __init__(self, engine: SoAEngine, b: int, s: int) -> None:
        self._e = engine
        self._b = b
        self._s = s
        self.plan = engine._plans[s]
        self.yellow_time = engine.yellow_time

    @property
    def current_phase_index(self) -> int:
        return int(self._e._cur[self._b, self._s])

    @property
    def pending_phase_index(self) -> int | None:
        value = int(self._e._pend[self._b, self._s])
        return None if value < 0 else value

    @property
    def yellow_remaining(self) -> int:
        return int(self._e._yel[self._b, self._s])

    @property
    def time_in_phase(self) -> int:
        return int(self._e._tip[self._b, self._s])

    @property
    def in_yellow(self) -> bool:
        return self.yellow_remaining > 0

    @property
    def current_phase(self):
        return self.plan.phases[self.current_phase_index]

    def permits(self, movement) -> bool:
        if self.in_yellow:
            return False
        return self.current_phase.permits(movement)

    def request_phase(self, phase_index: int) -> None:
        self._e.request_phase(self._b, self._e._sig_nodes[self._s], phase_index)


class _LazyMapping:
    """Minimal read-only mapping facade built from a keys list + getter."""

    __slots__ = ("_keys", "_get")

    def __init__(self, keys, get) -> None:
        self._keys = keys
        self._get = get

    def __getitem__(self, key):
        return self._get(key)

    def get(self, key, default=None):
        try:
            return self._get(key)
        except (KeyError, SimulationError):
            return default

    def __iter__(self):
        return iter(self._keys)

    def __len__(self):
        return len(self._keys)

    def __contains__(self, key):
        return key in self._keys

    def keys(self):
        return list(self._keys)

    def items(self):
        return [(key, self._get(key)) for key in self._keys]

    def values(self):
        return [self._get(key) for key in self._keys]


class SoAReplicaView:
    """One replica of an :class:`SoAEngine` behind the ``Simulation`` API.

    Detectors, rewards, metrics, agents, ``tsc_env``, and ``repro.serve``
    interact with a simulation exclusively through this surface, so a
    replica view is a drop-in ``sim`` object.  ``step()`` advances the
    whole engine and is therefore only allowed on single-replica engines;
    batched engines advance in lockstep via ``engine.step()`` (see
    :class:`repro.eval.batched.LockstepEnvGroup`).
    """

    def __init__(self, engine: SoAEngine, b: int) -> None:
        self.engine = engine
        self.b = b
        self.network = engine.network
        self.phase_plans = engine.phase_plans
        self.demand = engine._demands[b]
        self.yellow_time = engine.yellow_time
        self.saturation_rate = engine.saturation_rate
        self.startup_lost_time = engine.startup_lost_time
        self.teleport_time = engine.teleport_time
        #: Optional metric registry (``tsc_env.attach_telemetry``).
        self.metrics = None
        self._vehicle_views: dict[int, _VehicleView] = {}
        self._signal_views = {
            nid: _SignalView(engine, b, s)
            for s, nid in enumerate(engine._sig_nodes)
        }
        self.signals = _LazyMapping(
            engine._sig_nodes, self._signal_views.__getitem__
        )
        self.running = _LazyMapping(engine._link_ids, self._running_views)
        self.lane_queues = _LazyMapping(engine._lane_ids, self._queue_views)
        self.vehicles = _VehiclesMapping(self)

    # -- lifecycle -----------------------------------------------------
    @property
    def time(self) -> int:
        return self.engine.time

    @property
    def teleport_count(self) -> int:
        return self.engine.teleport_count[self.b]

    def set_phase(self, node_id: str, phase_index: int) -> None:
        self.engine.request_phase(self.b, node_id, phase_index)

    def set_capacity_factor(self, link_id: str, factor: float) -> None:
        """Engine-wide capacity scaling (applies to every replica)."""
        self.engine.set_capacity_factor(link_id, factor)

    @property
    def capacity_factors(self) -> dict[str, float]:
        return self.engine.capacity_factors

    @property
    def incidents(self):
        return self.engine.incidents

    @incidents.setter
    def incidents(self, schedule) -> None:
        self.engine.incidents = schedule

    def step(self, ticks: int = 1) -> None:
        if self.engine.batch != 1:
            raise SimulationError(
                "replica views of a batched SoAEngine advance in lockstep "
                "via engine.step(); per-view step() needs batch == 1"
            )
        self.engine.step(ticks)
        if self.metrics is not None:
            self.metrics.count("sim.ticks", ticks)

    def run_fixed_time(self, programs, ticks: int) -> None:
        if self.engine.batch != 1:
            raise SimulationError(
                "per-view run_fixed_time() needs batch == 1"
            )
        self.engine.run_fixed_time(programs, ticks)

    # -- vehicle/queue views -------------------------------------------
    def _vehicle(self, vid: int) -> _VehicleView:
        view = self._vehicle_views.get(vid)
        if view is None:
            view = self._vehicle_views[vid] = _VehicleView(
                self.engine, self.b, vid
            )
        return view

    def _running_views(self, link_id: str) -> list[_VehicleView]:
        k = self.engine._link_index_or_raise(link_id)
        return [self._vehicle(vid) for vid in self.engine._running[self.b][k]]

    def _queue_views(self, lane_id: str) -> list[_VehicleView]:
        l = self.engine._lane_index_or_raise(lane_id)
        queue = self.engine._queues[self.b * self.engine.NL + l]
        return [self._vehicle(vid) for vid in queue]

    @property
    def finished_vehicles(self) -> list[_VehicleView]:
        return [self._vehicle(vid) for vid in self.engine._finished[self.b]]

    @property
    def link_occupancy(self) -> dict[str, int]:
        occ = self.engine._occ[self.b]
        return {lid: occ[k] for k, lid in enumerate(self.engine._link_ids)}

    @property
    def insertion_queues(self) -> dict[str, list[_VehicleView]]:
        engine = self.engine
        gbase = self.b * engine.NO
        out: dict[str, list[_VehicleView]] = {}
        for o, k in enumerate(engine._origin_links):
            dq = engine._pend_dq[gbase + o]
            if dq:
                out[engine._link_ids[k]] = [self._vehicle(v) for v in dq]
        return out

    # -- Simulation introspection API ----------------------------------
    def discharge_credit(self, lane_id: str) -> float:
        l = self.engine._lane_index_or_raise(lane_id)
        return float(self.engine._credit[self.b * self.engine.NL + l])

    def queue_length(self, lane_id: str) -> int:
        l = self.engine._lane_index_or_raise(lane_id)
        return len(self.engine._queues[self.b * self.engine.NL + l])

    def halting_count(self, link_id: str) -> int:
        engine = self.engine
        k = engine._link_index_or_raise(link_id)
        base = self.b * engine.NL + engine._link_lane_start[k]
        return sum(
            len(engine._queues[base + off])
            for off in range(engine._link_lane_count[k])
        )

    def head_wait(self, lane_id: str) -> int:
        engine = self.engine
        l = engine._lane_index_or_raise(lane_id)
        queue = engine._queues[self.b * engine.NL + l]
        if not queue:
            return 0
        anchor = engine._v_anchor[self.b][queue[0]]
        if anchor >= 0:
            return engine.time - anchor
        return engine._v_wait_link[self.b][queue[0]]

    def link_head_wait(self, link_id: str) -> int:
        engine = self.engine
        k = engine._link_index_or_raise(link_id)
        start = engine._link_lane_start[k]
        return max(
            self.head_wait(engine._lane_ids[start + off])
            for off in range(engine._link_lane_count[k])
        )

    def vehicles_in_network(self) -> int:
        return (
            self.engine._inserted_cnt[self.b]
            - self.engine._finished_cnt[self.b]
        )

    def pending_insertions(self) -> int:
        return self.engine._arr_ptr[self.b] - self.engine._inserted_cnt[self.b]

    @property
    def total_created(self) -> int:
        return self.engine._arr_ptr[self.b]

    def is_drained(self) -> bool:
        return self.vehicles_in_network() == 0 and self.pending_insertions() == 0


class _VehiclesMapping:
    """``sim.vehicles``-shaped mapping: vehicle id -> vehicle view."""

    __slots__ = ("_view",)

    def __init__(self, view: SoAReplicaView) -> None:
        self._view = view

    def _count(self) -> int:
        return self._view.engine._arr_ptr[self._view.b]

    def __len__(self) -> int:
        return self._count()

    def __contains__(self, vid: int) -> bool:
        return 0 <= vid < self._count()

    def __getitem__(self, vid: int) -> _VehicleView:
        if not 0 <= vid < self._count():
            raise KeyError(vid)
        return self._view._vehicle(vid)

    def __iter__(self):
        return iter(range(self._count()))

    def keys(self):
        return range(self._count())

    def values(self):
        return [self._view._vehicle(vid) for vid in range(self._count())]

    def items(self):
        return [
            (vid, self._view._vehicle(vid)) for vid in range(self._count())
        ]
