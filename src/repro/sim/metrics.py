"""Performance metrics: travel time and waiting time.

Matches the paper's Section VI-C metric definitions:

* **Average travel time** — mean travel time over all vehicles entering
  and exiting the network.  Vehicles that have not exited when
  measurement happens are charged their elapsed time (which is how
  oversaturated scenarios report averages far above the horizon, as in
  Table II).
* **Average waiting time** — mean of the maximum waiting times across all
  incoming lanes at every intersection (sampled per step and averaged
  over the episode by the caller).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.sim.engine import Simulation


@dataclass
class TravelTimeStats:
    """Summary statistics of vehicle travel times."""

    count: int
    finished: int
    mean: float
    median: float
    p95: float
    max: float

    @staticmethod
    def empty() -> "TravelTimeStats":
        return TravelTimeStats(0, 0, 0.0, 0.0, 0.0, 0.0)


def travel_time_stats(sim: Simulation, include_unfinished: bool = True) -> TravelTimeStats:
    """Compute travel-time statistics at the simulation's current tick."""
    times: list[int] = [v.travel_time(sim.time) for v in sim.finished_vehicles]
    finished = len(times)
    if include_unfinished:
        for vehicle in sim.vehicles.values():
            if vehicle.finished is None:
                times.append(vehicle.travel_time(sim.time))
    if not times:
        return TravelTimeStats.empty()
    arr = np.asarray(times, dtype=np.float64)
    return TravelTimeStats(
        count=len(times),
        finished=finished,
        mean=float(arr.mean()),
        median=float(np.median(arr)),
        p95=float(np.percentile(arr, 95)),
        max=float(arr.max()),
    )


def average_travel_time(sim: Simulation, include_unfinished: bool = True) -> float:
    """Shorthand for the paper's headline metric."""
    return travel_time_stats(sim, include_unfinished).mean


def intersection_max_wait(sim: Simulation, node_id: str) -> int:
    """Max head waiting time across all incoming lanes of an intersection."""
    node = sim.network.nodes[node_id]
    waits = [
        sim.head_wait(lane.lane_id)
        for link_id in node.incoming
        for lane in sim.network.links[link_id].lanes
    ]
    return max(waits) if waits else 0


def network_average_wait(sim: Simulation) -> float:
    """Mean of per-intersection max waits (the paper's waiting-time metric)."""
    nodes = sim.network.signalized_nodes()
    if not nodes:
        return 0.0
    return float(np.mean([intersection_max_wait(sim, n) for n in nodes]))


@dataclass
class EpisodeRecorder:
    """Accumulates per-step waiting samples over an episode.

    Call :meth:`sample` once per decision interval; :meth:`summary` gives
    the episode's average waiting time (Fig. 7/8/10 y-axis).
    """

    wait_samples: list[float] = field(default_factory=list)
    queue_samples: list[float] = field(default_factory=list)

    def sample(self, sim: Simulation) -> None:
        self.wait_samples.append(network_average_wait(sim))
        total_halting = sum(
            sim.halting_count(link_id) for link_id in sim.network.links
        )
        self.queue_samples.append(float(total_halting))

    def summary(self) -> dict[str, float]:
        if not self.wait_samples:
            return {"avg_wait": 0.0, "avg_queue": 0.0, "peak_queue": 0.0}
        return {
            "avg_wait": float(np.mean(self.wait_samples)),
            "avg_queue": float(np.mean(self.queue_samples)),
            "peak_queue": float(np.max(self.queue_samples)),
        }
