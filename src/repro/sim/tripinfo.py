"""Trip-level statistics (SUMO ``tripinfo``-style output).

Per-vehicle and per-OD breakdowns of travel time, waiting time and
insertion delay.  The paper's tables report network averages; these
utilities expose the distribution *behind* those averages, which is what
you need to diagnose where a controller loses time (insertion backlog vs
in-network queueing) and which OD relations starve.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.engine import Simulation
from repro.sim.vehicle import Vehicle


@dataclass(frozen=True)
class TripRecord:
    """One vehicle's trip summary."""

    vehicle_id: int
    origin: str
    destination: str
    created: int
    inserted: int | None
    finished: int | None
    travel_time: int
    insertion_delay: int
    waiting_time: int
    links_travelled: int

    @property
    def completed(self) -> bool:
        return self.finished is not None


def trip_record(vehicle: Vehicle, now: int) -> TripRecord:
    """Build a :class:`TripRecord` from a vehicle at tick ``now``."""
    inserted = vehicle.inserted
    insertion_delay = (
        (inserted - vehicle.created) if inserted is not None else now - vehicle.created
    )
    return TripRecord(
        vehicle_id=vehicle.vehicle_id,
        origin=vehicle.route[0],
        destination=vehicle.route[-1],
        created=vehicle.created,
        inserted=inserted,
        finished=vehicle.finished,
        travel_time=vehicle.travel_time(now),
        insertion_delay=max(0, insertion_delay),
        waiting_time=vehicle.wait_total,
        links_travelled=vehicle.links_travelled,
    )


def all_trips(sim: Simulation) -> list[TripRecord]:
    """Trip records for every vehicle ever created, completed or not."""
    return [trip_record(v, sim.time) for v in sim.vehicles.values()]


@dataclass(frozen=True)
class ODSummary:
    """Aggregate statistics for one origin-destination relation."""

    origin: str
    destination: str
    count: int
    completed: int
    mean_travel_time: float
    mean_waiting_time: float
    mean_insertion_delay: float

    @property
    def completion_rate(self) -> float:
        return self.completed / self.count if self.count else 1.0


def od_summaries(sim: Simulation) -> list[ODSummary]:
    """Per-OD aggregates, sorted by mean travel time (worst first)."""
    buckets: dict[tuple[str, str], list[TripRecord]] = {}
    for record in all_trips(sim):
        buckets.setdefault((record.origin, record.destination), []).append(record)
    summaries = []
    for (origin, destination), records in buckets.items():
        summaries.append(
            ODSummary(
                origin=origin,
                destination=destination,
                count=len(records),
                completed=sum(1 for r in records if r.completed),
                mean_travel_time=float(np.mean([r.travel_time for r in records])),
                mean_waiting_time=float(np.mean([r.waiting_time for r in records])),
                mean_insertion_delay=float(
                    np.mean([r.insertion_delay for r in records])
                ),
            )
        )
    summaries.sort(key=lambda s: -s.mean_travel_time)
    return summaries


@dataclass(frozen=True)
class DelayDecomposition:
    """Where the network average travel time comes from."""

    mean_travel_time: float
    mean_insertion_delay: float
    mean_waiting_time: float
    mean_moving_time: float

    @staticmethod
    def compute(sim: Simulation) -> "DelayDecomposition":
        records = all_trips(sim)
        if not records:
            return DelayDecomposition(0.0, 0.0, 0.0, 0.0)
        travel = float(np.mean([r.travel_time for r in records]))
        insertion = float(np.mean([r.insertion_delay for r in records]))
        waiting = float(np.mean([r.waiting_time for r in records]))
        return DelayDecomposition(
            mean_travel_time=travel,
            mean_insertion_delay=insertion,
            mean_waiting_time=waiting,
            mean_moving_time=max(0.0, travel - insertion - waiting),
        )


def format_od_table(summaries: list[ODSummary], top: int = 10) -> str:
    """Human-readable worst-OD table."""
    lines = [
        f"{'origin':<18} {'destination':<18} {'n':>5} {'done':>5} "
        f"{'travel':>8} {'wait':>7} {'insert':>7}"
    ]
    for summary in summaries[:top]:
        lines.append(
            f"{summary.origin:<18} {summary.destination:<18} "
            f"{summary.count:>5} {summary.completed:>5} "
            f"{summary.mean_travel_time:>7.1f}s {summary.mean_waiting_time:>6.1f}s "
            f"{summary.mean_insertion_delay:>6.1f}s"
        )
    return "\n".join(lines)
