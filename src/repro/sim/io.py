"""Scenario serialization: road networks, phase plans and demand as JSON.

Lets downstream users define their own intersections in plain files
instead of Python, and lets experiments be archived exactly.  The format
is a single JSON document:

.. code-block:: json

    {
      "nodes": [{"id": "A", "x": 0, "y": 0, "signalized": false}, ...],
      "links": [{"id": "A->B", "from": "A", "to": "B", "length": 200,
                 "speed_limit": 13.89,
                 "lanes": [["through", "right"], ["left"]]}, ...],
      "movements": [{"in": "A->B", "out": "B->C", "turn": "through"}, ...],
      "phase_plans": {"B": [{"name": "go", "green": [["A->B", "B->C"]]}]},
      "flows": [{"name": "f", "origin": "A->B", "destination": "B->C",
                 "profile": [[0, 0], [900, 500], [1800, 0]]}]
    }

``movements`` entries may omit ``turn`` to use geometric classification;
``lanes`` lists each lane's permitted turn names (leftmost lane first).
"""

from __future__ import annotations

import json
import os
from typing import Any

from repro.errors import NetworkError
from repro.sim.demand import Flow, RateProfile
from repro.sim.network import RoadNetwork, TurnType
from repro.sim.signal import Phase, PhasePlan

_TURN_NAMES = {turn.value: turn for turn in TurnType}


def network_to_dict(
    network: RoadNetwork,
    phase_plans: dict[str, PhasePlan] | None = None,
    flows: list[Flow] | None = None,
) -> dict[str, Any]:
    """Serialise a scenario to a JSON-compatible dictionary."""
    payload: dict[str, Any] = {
        "nodes": [
            {"id": node.node_id, "x": node.x, "y": node.y, "signalized": node.signalized}
            for node in network.nodes.values()
        ],
        "links": [
            {
                "id": link.link_id,
                "from": link.from_node,
                "to": link.to_node,
                "length": link.length,
                "speed_limit": link.speed_limit,
                "lanes": [
                    sorted(turn.value for turn in lane.allowed_turns)
                    for lane in link.lanes
                ],
            }
            for link in network.links.values()
        ],
        "movements": [
            {"in": movement.in_link, "out": movement.out_link, "turn": movement.turn.value}
            for movement in network.movements.values()
        ],
    }
    if phase_plans is not None:
        payload["phase_plans"] = {
            node_id: [
                {
                    "name": phase.name,
                    "green": sorted(list(pair) for pair in phase.green_movements),
                }
                for phase in plan.phases
            ]
            for node_id, plan in phase_plans.items()
        }
    if flows is not None:
        payload["flows"] = [
            {
                "name": flow.name,
                "origin": flow.origin_link,
                "destination": flow.destination_link,
                "profile": [list(point) for point in flow.profile.points],
            }
            for flow in flows
        ]
    return payload


def network_from_dict(
    payload: dict[str, Any],
) -> tuple[RoadNetwork, dict[str, PhasePlan], list[Flow]]:
    """Rebuild ``(network, phase_plans, flows)`` from a dictionary.

    ``phase_plans`` / ``flows`` are empty when absent from the payload.
    The network is validated before returning.
    """
    network = RoadNetwork()
    for node in payload.get("nodes", []):
        network.add_node(
            node["id"], node["x"], node["y"], bool(node.get("signalized", False))
        )
    for link in payload.get("links", []):
        lanes = link.get("lanes")
        lane_turns = None
        if lanes is not None:
            lane_turns = [
                frozenset(_parse_turn(name) for name in lane) for lane in lanes
            ]
        network.add_link(
            link["id"],
            link["from"],
            link["to"],
            length=float(link["length"]),
            num_lanes=len(lane_turns) if lane_turns else int(link.get("num_lanes", 1)),
            speed_limit=float(link.get("speed_limit", 13.89)),
            lane_turns=lane_turns,
        )
    for movement in payload.get("movements", []):
        turn = movement.get("turn")
        network.add_movement(
            movement["in"],
            movement["out"],
            turn=_parse_turn(turn) if turn else None,
        )
    network.validate()

    phase_plans: dict[str, PhasePlan] = {}
    for node_id, phases in payload.get("phase_plans", {}).items():
        parsed = [
            Phase(
                entry.get("name", f"phase{idx}"),
                frozenset(tuple(pair) for pair in entry["green"]),
            )
            for idx, entry in enumerate(phases)
        ]
        phase_plans[node_id] = PhasePlan(node_id, parsed)

    flows = [
        Flow(
            entry["name"],
            entry["origin"],
            entry["destination"],
            RateProfile(tuple((float(t), float(r)) for t, r in entry["profile"])),
        )
        for entry in payload.get("flows", [])
    ]
    return network, phase_plans, flows


def _parse_turn(name: str) -> TurnType:
    try:
        return _TURN_NAMES[name]
    except KeyError:
        raise NetworkError(
            f"unknown turn type {name!r}; expected one of {sorted(_TURN_NAMES)}"
        )


def save_scenario(
    path: str | os.PathLike,
    network: RoadNetwork,
    phase_plans: dict[str, PhasePlan] | None = None,
    flows: list[Flow] | None = None,
) -> None:
    """Write a scenario JSON file."""
    with open(path, "w") as handle:
        json.dump(network_to_dict(network, phase_plans, flows), handle, indent=2)


def load_scenario(
    path: str | os.PathLike,
) -> tuple[RoadNetwork, dict[str, PhasePlan], list[Flow]]:
    """Read a scenario JSON file written by :func:`save_scenario`."""
    with open(path) as handle:
        payload = json.load(handle)
    return network_from_dict(payload)
