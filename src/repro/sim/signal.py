"""Signal phases, fixed-time programs, and per-intersection signal state.

A *phase* is a set of movements that receive green simultaneously
(paper Fig. 3).  Agents act by requesting a phase; when the requested
phase differs from the active one, the controller inserts a yellow
interval of ``yellow_time`` seconds during which no movement discharges,
then switches (Section IV-B).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import NetworkError
from repro.sim.network import MovementKey, RoadNetwork, TurnType


@dataclass(frozen=True)
class Phase:
    """A named set of simultaneously-green movements."""

    name: str
    green_movements: frozenset[MovementKey]

    def permits(self, movement: MovementKey) -> bool:
        return movement in self.green_movements


@dataclass
class PhasePlan:
    """The ordered phase set of one intersection (its action space)."""

    node_id: str
    phases: list[Phase]

    def __post_init__(self) -> None:
        if not self.phases:
            raise NetworkError(f"node {self.node_id!r} has an empty phase plan")

    @property
    def num_phases(self) -> int:
        return len(self.phases)


class SignalState:
    """Dynamic signal state of one intersection.

    The state machine has two modes: GREEN (active phase's movements may
    discharge) and YELLOW (``yellow_remaining > 0``; nothing discharges).
    """

    def __init__(self, plan: PhasePlan, yellow_time: int = 2) -> None:
        if yellow_time < 0:
            raise NetworkError("yellow_time must be non-negative")
        self.plan = plan
        self.yellow_time = yellow_time
        self.current_phase_index = 0
        self.pending_phase_index: int | None = None
        self.yellow_remaining = 0
        self.time_in_phase = 0
        #: True for the single tick on which a phase switch committed; the
        #: engine uses this to apply start-up lost time to the new greens.
        self.just_switched = False

    @property
    def in_yellow(self) -> bool:
        return self.yellow_remaining > 0

    @property
    def current_phase(self) -> Phase:
        return self.plan.phases[self.current_phase_index]

    def request_phase(self, phase_index: int) -> None:
        """Ask for a phase change; a yellow interval precedes any switch."""
        if not 0 <= phase_index < self.plan.num_phases:
            raise NetworkError(
                f"phase index {phase_index} out of range for node "
                f"{self.plan.node_id!r} ({self.plan.num_phases} phases)"
            )
        if phase_index == self.current_phase_index and not self.in_yellow:
            return
        self.pending_phase_index = phase_index
        if not self.in_yellow:
            self.yellow_remaining = self.yellow_time
            if self.yellow_time == 0:
                self._commit()

    def _commit(self) -> None:
        assert self.pending_phase_index is not None
        self.current_phase_index = self.pending_phase_index
        self.pending_phase_index = None
        self.time_in_phase = 0
        self.just_switched = True

    def tick(self) -> None:
        """Advance the signal state by one second.

        ``just_switched`` is *not* cleared here — the simulation engine
        consumes and clears it after applying start-up lost time.
        """
        if self.in_yellow:
            self.yellow_remaining -= 1
            if self.yellow_remaining == 0:
                self._commit()
        else:
            self.time_in_phase += 1

    def permits(self, movement: MovementKey) -> bool:
        """Whether ``movement`` may discharge this tick."""
        if self.in_yellow:
            return False
        return self.current_phase.permits(movement)


@dataclass
class FixedTimeProgram:
    """A cyclic fixed-time schedule: ``(phase_index, green_seconds)`` pairs."""

    stages: list[tuple[int, int]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.stages:
            raise NetworkError("fixed-time program needs at least one stage")
        for index, duration in self.stages:
            if duration <= 0:
                raise NetworkError("fixed-time stage durations must be positive")
        # Expanded second-by-second schedule, built lazily on first
        # phase_at() call so per-tick queries are one table lookup instead
        # of a stage scan.  Only valid for integer durations.
        self._phase_table: tuple[int, ...] | None = None

    @property
    def cycle_length(self) -> int:
        return sum(duration for _, duration in self.stages)

    def phase_at(self, t: int) -> int:
        """Phase index scheduled at absolute second ``t``."""
        table = self._phase_table
        if table is None:
            if all(isinstance(duration, int) for _, duration in self.stages):
                expanded: list[int] = []
                for phase_index, duration in self.stages:
                    expanded.extend([phase_index] * duration)
                table = self._phase_table = tuple(expanded)
            else:  # fractional durations: keep the exact scan semantics
                offset = t % self.cycle_length
                for phase_index, duration in self.stages:
                    if offset < duration:
                        return phase_index
                    offset -= duration
                raise AssertionError("unreachable")
        return table[t % len(table)]


def default_four_phase_plan(network: RoadNetwork, node_id: str) -> PhasePlan:
    """Build the paper's four-phase plan (Fig. 3) for a grid intersection.

    Phases 1/2 serve North-South bound movements (through+right, then
    left), phases 3/4 serve West-East bound movements.  Orientation is
    determined from link headings; right turns ride along with their
    approach's through phase.  Intersections with fewer approaches (grid
    edges, T-junctions) get only the phases that have at least one
    movement.
    """
    ns_through: set[MovementKey] = set()
    ns_left: set[MovementKey] = set()
    ew_through: set[MovementKey] = set()
    ew_left: set[MovementKey] = set()
    for movement in network.movements_at(node_id):
        hx, hy = network.link_heading(movement.in_link)
        is_ns = abs(hy) >= abs(hx)
        if movement.turn == TurnType.LEFT:
            (ns_left if is_ns else ew_left).add(movement.key)
        else:  # THROUGH and RIGHT share a phase; U-turns join lefts
            if movement.turn == TurnType.UTURN:
                (ns_left if is_ns else ew_left).add(movement.key)
            else:
                (ns_through if is_ns else ew_through).add(movement.key)
    candidates = [
        Phase("NS-through", frozenset(ns_through)),
        Phase("NS-left", frozenset(ns_left)),
        Phase("EW-through", frozenset(ew_through)),
        Phase("EW-left", frozenset(ew_left)),
    ]
    phases = [p for p in candidates if p.green_movements]
    if not phases:
        raise NetworkError(f"node {node_id!r} has no movements to build phases from")
    return PhasePlan(node_id, phases)
