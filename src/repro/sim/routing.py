"""Static shortest-path routing over the road network.

Routes are computed on the link graph: a route is a sequence of link ids
where each consecutive pair is a declared movement.  Dijkstra runs over
link-to-link transitions weighted by free-flow traversal time, which
matches SUMO's default ``duarouter`` behaviour for uncongested planning.
"""

from __future__ import annotations

import heapq
from functools import lru_cache

from repro.errors import NetworkError
from repro.sim.network import RoadNetwork


class Router:
    """Shortest-route computation with memoisation."""

    def __init__(self, network: RoadNetwork) -> None:
        self.network = network
        self._route_cache: dict[tuple[str, str], list[str]] = {}

    def route(self, origin_link: str, destination_link: str) -> list[str]:
        """Shortest link-sequence from ``origin_link`` to ``destination_link``.

        Both endpoints are included.  Raises :class:`NetworkError` when no
        route exists.
        """
        key = (origin_link, destination_link)
        cached = self._route_cache.get(key)
        if cached is not None:
            return list(cached)
        if origin_link not in self.network.links:
            raise NetworkError(f"unknown origin link {origin_link!r}")
        if destination_link not in self.network.links:
            raise NetworkError(f"unknown destination link {destination_link!r}")

        # Dijkstra over links; cost of entering a link is its free-flow time.
        start_cost = self.network.links[origin_link].freeflow_ticks
        best: dict[str, float] = {origin_link: start_cost}
        parent: dict[str, str] = {}
        frontier: list[tuple[float, str]] = [(start_cost, origin_link)]
        while frontier:
            cost, link_id = heapq.heappop(frontier)
            if cost > best.get(link_id, float("inf")):
                continue
            if link_id == destination_link:
                break
            for movement in self.network.movements_from(link_id):
                nxt = movement.out_link
                nxt_cost = cost + self.network.links[nxt].freeflow_ticks
                if nxt_cost < best.get(nxt, float("inf")):
                    best[nxt] = nxt_cost
                    parent[nxt] = link_id
                    heapq.heappush(frontier, (nxt_cost, nxt))
        if destination_link not in best:
            raise NetworkError(
                f"no route from {origin_link!r} to {destination_link!r}"
            )
        route = [destination_link]
        while route[-1] != origin_link:
            route.append(parent[route[-1]])
        route.reverse()
        self._route_cache[key] = list(route)
        return route

    @lru_cache(maxsize=None)
    def reachable(self, origin_link: str) -> frozenset[str]:
        """All links reachable from ``origin_link`` (origin included)."""
        seen = {origin_link}
        stack = [origin_link]
        while stack:
            link_id = stack.pop()
            for movement in self.network.movements_from(link_id):
                if movement.out_link not in seen:
                    seen.add(movement.out_link)
                    stack.append(movement.out_link)
        return frozenset(seen)
