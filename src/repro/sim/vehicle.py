"""Vehicle entity and lifecycle states."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class VehicleState(Enum):
    """Lifecycle of a vehicle through the simulation."""

    PENDING = "pending"  # created, waiting to be inserted at its origin
    RUNNING = "running"  # traversing a link at free-flow speed
    QUEUED = "queued"  # halted in a lane queue at a stop line
    FINISHED = "finished"  # left the network


@dataclass(slots=True)
class Vehicle:
    """A single vehicle with a fixed route.

    Timing fields are integer simulation ticks (seconds).  ``created`` is
    when the demand model emitted the vehicle; travel time is measured
    from creation so that time spent waiting to enter a full network
    counts (DESIGN.md section 6).
    """

    vehicle_id: int
    route: list[str]
    created: int
    state: VehicleState = VehicleState.PENDING
    route_index: int = 0
    inserted: int | None = None
    finished: int | None = None
    # Running bookkeeping.
    run_start: int = 0
    run_arrival: int = 0
    # Queue bookkeeping.  Waits are accrued lazily: while a vehicle is
    # queued, ``wait_anchor`` holds the tick it joined the queue and
    # ``wait_clock`` the owning simulation, so the counters derive from
    # the clock instead of being incremented every tick; the engine
    # materializes them into the ``*_base`` fields on dequeue.
    lane_id: str | None = None
    wait_base: int = 0
    wait_link_base: int = 0
    wait_anchor: int = -1
    wait_clock: object | None = None
    links_travelled: int = field(default=0)

    def __post_init__(self) -> None:
        if not self.route:
            raise ValueError(f"vehicle {self.vehicle_id} has an empty route")

    @property
    def wait_total(self) -> int:
        """Total ticks spent halted, across all links so far."""
        if self.wait_anchor >= 0:
            return self.wait_base + self.wait_clock.time - self.wait_anchor
        return self.wait_base

    @property
    def wait_current_link(self) -> int:
        """Ticks halted on the current link (0 while running)."""
        if self.wait_anchor >= 0:
            return self.wait_clock.time - self.wait_anchor
        return self.wait_link_base

    @property
    def current_link(self) -> str:
        return self.route[self.route_index]

    @property
    def on_last_link(self) -> bool:
        return self.route_index == len(self.route) - 1

    @property
    def next_link(self) -> str | None:
        if self.on_last_link:
            return None
        return self.route[self.route_index + 1]

    def travel_time(self, now: int) -> int:
        """Elapsed (or final) travel time at tick ``now``."""
        end = self.finished if self.finished is not None else now
        return max(0, end - self.created)
