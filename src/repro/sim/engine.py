"""Discrete-time mesoscopic traffic simulation engine.

This is the SUMO substitute (DESIGN.md sections 2 and 6).  Time advances
in 1-second ticks.  Vehicles traverse links at free-flow speed, join
per-lane FIFO queues at stop lines, and discharge at a saturation rate
when their movement has green and the downstream link has storage space.
The model captures the phenomena the paper's evaluation depends on:

* queue growth and *spillback* (full links block upstream discharge),
* *head-of-line blocking* on shared lanes (a left-turner waiting for its
  phase blocks through traffic behind it — paper Fig. 2),
* oversaturation and recovery (insertion queues at origins let demand
  exceed network capacity without losing vehicles),
* yellow intervals during which nothing discharges.
"""

from __future__ import annotations

from collections import deque

from repro.errors import SimulationError
from repro.sim.demand import DemandGenerator
from repro.sim.network import Lane, RoadNetwork, TurnType
from repro.sim.signal import FixedTimeProgram, PhasePlan, SignalState
from repro.sim.vehicle import Vehicle, VehicleState

#: Default saturation flow: 1800 veh/h/lane = 0.5 veh/s/lane, the textbook
#: value the paper's Background section refers to.
DEFAULT_SATURATION_RATE = 0.5

#: Seconds of start-up lost time after a phase switch (HCM convention):
#: freshly-greened lanes do not discharge at saturation immediately.  This
#: is what makes very short fixed-time greens (the paper's 5 s phases)
#: inefficient, and what rewards adaptive controllers for *holding* a
#: productive phase.
DEFAULT_STARTUP_LOST_TIME = 2.0

#: Gap-acceptance window for permissive left turns: a left may proceed
#: during its approach's through phase only when the opposing approach has
#: no queue and no vehicle running within this many metres of its stop
#: line.  This mirrors SUMO's permitted-left behaviour on shared lanes and
#: prevents a waiting left-turner from being an *absorbing* blockage.
DEFAULT_PERMISSIVE_GAP_M = 50.0


class Simulation:
    """One simulation run over a validated :class:`RoadNetwork`.

    Parameters
    ----------
    network:
        The road network (validated automatically if needed).
    demand:
        Vehicle source; ``emit`` is called once per tick.
    phase_plans:
        Signal phase plan per signalized node; every signalized node must
        be covered.
    yellow_time:
        Seconds of all-red-ish yellow inserted before each phase switch.
    saturation_rate:
        Discharge rate per lane, vehicles/second.
    """

    def __init__(
        self,
        network: RoadNetwork,
        demand: DemandGenerator | None,
        phase_plans: dict[str, PhasePlan],
        yellow_time: int = 2,
        saturation_rate: float = DEFAULT_SATURATION_RATE,
        startup_lost_time: float = DEFAULT_STARTUP_LOST_TIME,
        permissive_left: bool = True,
        permissive_gap_m: float = DEFAULT_PERMISSIVE_GAP_M,
        teleport_time: int | None = None,
    ) -> None:
        if not network.validated:
            network.validate()
        missing = set(network.signalized_nodes()) - set(phase_plans)
        if missing:
            raise SimulationError(f"no phase plan for signalized nodes: {sorted(missing)}")
        if saturation_rate <= 0:
            raise SimulationError("saturation_rate must be positive")
        if startup_lost_time < 0:
            raise SimulationError("startup_lost_time must be non-negative")
        self.network = network
        self.demand = demand
        self.yellow_time = yellow_time
        self.saturation_rate = saturation_rate
        self.startup_lost_time = startup_lost_time
        self.permissive_left = permissive_left
        self.permissive_gap_m = permissive_gap_m
        if teleport_time is not None and teleport_time <= 0:
            raise SimulationError("teleport_time must be positive when set")
        #: SUMO-style watchdog: a queue-head vehicle waiting longer than
        #: this many seconds on one link is force-moved onto its next
        #: link (ignoring storage) so absolute deadlocks cannot freeze an
        #: evaluation forever.  ``None`` (default) disables teleporting —
        #: the paper-faithful setting where gridlock is gridlock.
        self.teleport_time = teleport_time
        self.teleport_count = 0
        self.phase_plans = phase_plans
        self._opposing_link = self._build_opposing_map()

        self.time = 0
        self.signals: dict[str, SignalState] = {
            node_id: SignalState(plan, yellow_time) for node_id, plan in phase_plans.items()
        }
        self.vehicles: dict[int, Vehicle] = {}
        self.lane_queues: dict[str, deque[Vehicle]] = {
            lane.lane_id: deque() for link in network.links.values() for lane in link.lanes
        }
        self.running: dict[str, list[Vehicle]] = {link_id: [] for link_id in network.links}
        self.link_occupancy: dict[str, int] = {link_id: 0 for link_id in network.links}
        self.insertion_queues: dict[str, deque[Vehicle]] = {}
        self._discharge_credit: dict[str, float] = {
            lane_id: 0.0 for lane_id in self.lane_queues
        }
        self._insertion_credit: dict[str, float] = {}
        self.finished_vehicles: list[Vehicle] = []
        self._total_created = 0

    # ------------------------------------------------------------------
    # Agent-facing control surface
    # ------------------------------------------------------------------
    def set_phase(self, node_id: str, phase_index: int) -> None:
        """Request a phase for a signalized intersection."""
        self.signals[node_id].request_phase(phase_index)

    def run_fixed_time(self, programs: dict[str, FixedTimeProgram], ticks: int) -> None:
        """Drive all signals from fixed-time programs for ``ticks`` seconds."""
        for _ in range(ticks):
            for node_id, program in programs.items():
                self.set_phase(node_id, program.phase_at(self.time))
            self.step()

    # ------------------------------------------------------------------
    # Core stepping
    # ------------------------------------------------------------------
    def step(self, ticks: int = 1) -> None:
        """Advance the simulation by ``ticks`` seconds."""
        for _ in range(ticks):
            self._step_once()

    def _step_once(self) -> None:
        self._update_signals()
        self._discharge_queues()
        if self.teleport_time is not None:
            self._teleport_stuck()
        self._advance_running()
        self._insert_pending()
        self._generate_demand()
        self._accrue_waiting()
        self.time += 1

    def _teleport_stuck(self) -> None:
        """Force queue heads stuck beyond ``teleport_time`` onto their
        next link (or out of the network), ignoring signal and storage."""
        for lane_id, queue in self.lane_queues.items():
            if not queue:
                continue
            head = queue[0]
            if head.wait_current_link <= self.teleport_time:
                continue
            queue.popleft()
            self.link_occupancy[head.current_link] -= 1
            self.teleport_count += 1
            if head.next_link is None:
                self._finish_vehicle(head)
            else:
                self._enter_link(head, head.next_link)

    def _update_signals(self) -> None:
        for node_id, signal in self.signals.items():
            signal.tick()
            if signal.just_switched:
                signal.just_switched = False
                self._apply_startup_lost_time(node_id)

    def _apply_startup_lost_time(self, node_id: str) -> None:
        """Penalise discharge credit of all approaches after a phase switch."""
        penalty = self.startup_lost_time * self.saturation_rate
        if penalty <= 0:
            return
        for link_id in self.network.nodes[node_id].incoming:
            for lane in self.network.links[link_id].lanes:
                self._discharge_credit[lane.lane_id] = -penalty

    def _build_opposing_map(self) -> dict[str, str | None]:
        """For each incoming link of a signalized node, the incoming link
        arriving from the opposite direction (or None)."""
        opposing: dict[str, str | None] = {}
        for node_id in self.network.signalized_nodes():
            incoming = self.network.nodes[node_id].incoming
            headings = {l: self.network.link_heading(l) for l in incoming}
            for link_id in incoming:
                hx, hy = headings[link_id]
                best = None
                for other in incoming:
                    if other == link_id:
                        continue
                    ox, oy = headings[other]
                    if hx * ox + hy * oy < -0.7:  # roughly head-on
                        best = other
                        break
                opposing[link_id] = best
        return opposing

    def _opposing_clear(self, in_link: str) -> bool:
        """Gap acceptance: is the opposing approach free of conflicts?"""
        opposing = self._opposing_link.get(in_link)
        if opposing is None:
            return True
        link = self.network.links[opposing]
        for lane in link.lanes:
            if self.lane_queues[lane.lane_id]:
                return False
        for vehicle in self.running[opposing]:
            travelled = link.speed_limit * (self.time - vehicle.run_start)
            if link.length - travelled <= self.permissive_gap_m:
                return False
        return True

    def _movement_permitted(self, vehicle: Vehicle) -> bool:
        """May this queue-head vehicle cross the intersection this tick?

        A movement proceeds when its phase is green (protected), or — for
        left turns with ``permissive_left`` enabled — when the same
        approach currently has a green through/right movement and the
        opposing approach is clear (permitted left, as in SUMO's shared
        through/left lanes).
        """
        link = self.network.links[vehicle.current_link]
        node_id = link.to_node
        next_link = vehicle.next_link
        if next_link is None:
            return True  # exiting at an unsignalized terminal via queue
        signal = self.signals.get(node_id)
        if signal is None:
            return True  # unsignalized node: always permitted
        key = (vehicle.current_link, next_link)
        if signal.permits(key):
            return True
        if not self.permissive_left or signal.in_yellow:
            return False
        movement = self.network.movements.get(key)
        if movement is None or movement.turn is not TurnType.LEFT:
            return False
        phase = signal.current_phase
        approach_has_green = any(
            green_in == vehicle.current_link
            and self.network.movements[(green_in, green_out)].turn
            in (TurnType.THROUGH, TurnType.RIGHT)
            for green_in, green_out in phase.green_movements
        )
        if not approach_has_green:
            return False
        return self._opposing_clear(vehicle.current_link)

    def _discharge_queues(self) -> None:
        for link in self.network.links.values():
            for lane in link.lanes:
                lane_id = lane.lane_id
                queue = self.lane_queues[lane_id]
                credit = min(self._discharge_credit[lane_id] + self.saturation_rate, 1.0)
                while queue and credit >= 1.0:
                    head = queue[0]
                    if not self._movement_permitted(head):
                        break  # head-of-line blocking
                    next_link_id = head.next_link
                    if next_link_id is None:
                        # Exit the network from the queue.
                        queue.popleft()
                        self.link_occupancy[link.link_id] -= 1
                        self._finish_vehicle(head)
                        credit -= 1.0
                        continue
                    next_link = self.network.links[next_link_id]
                    if self.link_occupancy[next_link_id] >= next_link.storage:
                        break  # spillback: downstream full
                    queue.popleft()
                    self.link_occupancy[link.link_id] -= 1
                    self._enter_link(head, next_link_id)
                    credit -= 1.0
                self._discharge_credit[lane_id] = credit if queue else 0.0

    def _enter_link(self, vehicle: Vehicle, link_id: str) -> None:
        vehicle.route_index += 1
        if vehicle.route[vehicle.route_index] != link_id:
            raise SimulationError(
                f"vehicle {vehicle.vehicle_id} routed onto {link_id!r} but route says "
                f"{vehicle.route[vehicle.route_index]!r}"
            )
        link = self.network.links[link_id]
        vehicle.state = VehicleState.RUNNING
        vehicle.lane_id = None
        vehicle.run_start = self.time
        vehicle.run_arrival = self.time + link.freeflow_ticks
        vehicle.wait_current_link = 0
        vehicle.links_travelled += 1
        self.running[link_id].append(vehicle)
        self.link_occupancy[link_id] += 1

    def _choose_lane(self, vehicle: Vehicle) -> Lane | None:
        """Shortest candidate lane permitting the vehicle's next movement."""
        link = self.network.links[vehicle.current_link]
        next_link = vehicle.next_link
        if next_link is None:
            candidates = link.lanes
        else:
            movement = self.network.movements.get((vehicle.current_link, next_link))
            if movement is None:
                raise SimulationError(
                    f"vehicle {vehicle.vehicle_id} needs undeclared movement "
                    f"({vehicle.current_link!r}, {next_link!r})"
                )
            candidates = self.network.lanes_for_movement(movement)
        best: Lane | None = None
        best_len = None
        for lane in candidates:
            queue_len = len(self.lane_queues[lane.lane_id])
            if queue_len >= link.lane_capacity:
                continue
            if best is None or queue_len < best_len:
                best, best_len = lane, queue_len
        return best

    def _advance_running(self) -> None:
        for link_id, running in self.running.items():
            if not running:
                continue
            still_running: list[Vehicle] = []
            for vehicle in running:
                if vehicle.run_arrival > self.time:
                    still_running.append(vehicle)
                    continue
                if vehicle.on_last_link:
                    # Reached the end of its final link: leave the network.
                    self.link_occupancy[link_id] -= 1
                    self._finish_vehicle(vehicle)
                    continue
                lane = self._choose_lane(vehicle)
                if lane is None:
                    # All candidate lanes full: remain (blocked) on the link.
                    still_running.append(vehicle)
                    continue
                vehicle.state = VehicleState.QUEUED
                vehicle.lane_id = lane.lane_id
                self.lane_queues[lane.lane_id].append(vehicle)
            self.running[link_id] = still_running

    def _insert_pending(self) -> None:
        for link_id, pending in self.insertion_queues.items():
            if not pending:
                continue
            link = self.network.links[link_id]
            credit = min(
                self._insertion_credit.get(link_id, 0.0)
                + self.saturation_rate * link.num_lanes,
                float(link.num_lanes),
            )
            while pending and credit >= 1.0:
                if self.link_occupancy[link_id] >= link.storage:
                    break
                vehicle = pending.popleft()
                vehicle.inserted = self.time
                vehicle.route_index = -1  # _enter_link advances to 0
                self._enter_link(vehicle, link_id)
                credit -= 1.0
            self._insertion_credit[link_id] = credit if pending else 0.0

    def _generate_demand(self) -> None:
        if self.demand is None:
            return
        for vehicle_id, route in self.demand.emit(self.time):
            vehicle = Vehicle(vehicle_id=vehicle_id, route=route, created=self.time)
            self.vehicles[vehicle_id] = vehicle
            self.insertion_queues.setdefault(route[0], deque()).append(vehicle)
            self._total_created += 1

    def _accrue_waiting(self) -> None:
        for queue in self.lane_queues.values():
            for vehicle in queue:
                vehicle.wait_total += 1
                vehicle.wait_current_link += 1

    def _finish_vehicle(self, vehicle: Vehicle) -> None:
        vehicle.state = VehicleState.FINISHED
        vehicle.finished = self.time
        vehicle.lane_id = None
        self.finished_vehicles.append(vehicle)

    # ------------------------------------------------------------------
    # Introspection used by detectors / metrics / agents
    # ------------------------------------------------------------------
    def queue_length(self, lane_id: str) -> int:
        """Vehicles halted in a lane (ground truth, unlimited range)."""
        return len(self.lane_queues[lane_id])

    def halting_count(self, link_id: str) -> int:
        """Total halted vehicles across a link's lanes."""
        link = self.network.links[link_id]
        return sum(len(self.lane_queues[lane.lane_id]) for lane in link.lanes)

    def head_wait(self, lane_id: str) -> int:
        """Accumulated wait (s) of the first vehicle in a lane, 0 if empty."""
        queue = self.lane_queues[lane_id]
        if not queue:
            return 0
        return queue[0].wait_current_link

    def link_head_wait(self, link_id: str) -> int:
        """Maximum head wait across a link's lanes (paper's link-level wait)."""
        link = self.network.links[link_id]
        return max(self.head_wait(lane.lane_id) for lane in link.lanes)

    def vehicles_in_network(self) -> int:
        return sum(self.link_occupancy.values())

    def pending_insertions(self) -> int:
        return sum(len(queue) for queue in self.insertion_queues.values())

    @property
    def total_created(self) -> int:
        return self._total_created

    def is_drained(self) -> bool:
        """True when no vehicle remains anywhere in the system."""
        return self.vehicles_in_network() == 0 and self.pending_insertions() == 0
