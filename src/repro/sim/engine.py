"""Discrete-time mesoscopic traffic simulation engine.

This is the SUMO substitute (DESIGN.md sections 2 and 6).  Time advances
in 1-second ticks.  Vehicles traverse links at free-flow speed, join
per-lane FIFO queues at stop lines, and discharge at a saturation rate
when their movement has green and the downstream link has storage space.
The model captures the phenomena the paper's evaluation depends on:

* queue growth and *spillback* (full links block upstream discharge),
* *head-of-line blocking* on shared lanes (a left-turner waiting for its
  phase blocks through traffic behind it — paper Fig. 2),
* oversaturation and recovery (insertion queues at origins let demand
  exceed network capacity without losing vehicles),
* yellow intervals during which nothing discharges.

Two step implementations coexist.  The default *fast path* precomputes
lane/movement indexes at construction (stable lane→index maps, a numpy
discharge-credit array, per-movement candidate-lane tables, per-phase
approach-green sets) and exploits the engine's ordering invariants to
skip work; ``fast_path=False`` selects the original straight-line
reference implementation.  Both produce bit-identical trajectories —
``tests/sim/test_engine_equivalence.py`` pins this.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.errors import SimulationError
from repro.sim.demand import DemandGenerator
from repro.sim.network import Lane, RoadNetwork, TurnType
from repro.sim.signal import FixedTimeProgram, PhasePlan, SignalState
from repro.sim.vehicle import Vehicle, VehicleState

#: Default saturation flow: 1800 veh/h/lane = 0.5 veh/s/lane, the textbook
#: value the paper's Background section refers to.
DEFAULT_SATURATION_RATE = 0.5

#: Seconds of start-up lost time after a phase switch (HCM convention):
#: freshly-greened lanes do not discharge at saturation immediately.  This
#: is what makes very short fixed-time greens (the paper's 5 s phases)
#: inefficient, and what rewards adaptive controllers for *holding* a
#: productive phase.
DEFAULT_STARTUP_LOST_TIME = 2.0

#: Gap-acceptance window for permissive left turns: a left may proceed
#: during its approach's through phase only when the opposing approach has
#: no queue and no vehicle running within this many metres of its stop
#: line.  This mirrors SUMO's permitted-left behaviour on shared lanes and
#: prevents a waiting left-turner from being an *absorbing* blockage.
DEFAULT_PERMISSIVE_GAP_M = 50.0


class Simulation:
    """One simulation run over a validated :class:`RoadNetwork`.

    Parameters
    ----------
    network:
        The road network (validated automatically if needed).
    demand:
        Vehicle source; ``emit`` is called once per tick.
    phase_plans:
        Signal phase plan per signalized node; every signalized node must
        be covered.
    yellow_time:
        Seconds of all-red-ish yellow inserted before each phase switch.
    saturation_rate:
        Discharge rate per lane, vehicles/second.
    fast_path:
        Use the index-precomputed step implementation (default).  The
        reference implementation (``False``) computes every lookup from
        the network dicts each tick; trajectories are bit-identical.
    """

    def __init__(
        self,
        network: RoadNetwork,
        demand: DemandGenerator | None,
        phase_plans: dict[str, PhasePlan],
        yellow_time: int = 2,
        saturation_rate: float = DEFAULT_SATURATION_RATE,
        startup_lost_time: float = DEFAULT_STARTUP_LOST_TIME,
        permissive_left: bool = True,
        permissive_gap_m: float = DEFAULT_PERMISSIVE_GAP_M,
        teleport_time: int | None = None,
        fast_path: bool = True,
    ) -> None:
        if not network.validated:
            network.validate()
        missing = set(network.signalized_nodes()) - set(phase_plans)
        if missing:
            raise SimulationError(f"no phase plan for signalized nodes: {sorted(missing)}")
        if saturation_rate <= 0:
            raise SimulationError("saturation_rate must be positive")
        if startup_lost_time < 0:
            raise SimulationError("startup_lost_time must be non-negative")
        self.network = network
        self.demand = demand
        self.yellow_time = yellow_time
        self.saturation_rate = saturation_rate
        self.startup_lost_time = startup_lost_time
        self.permissive_left = permissive_left
        self.permissive_gap_m = permissive_gap_m
        if teleport_time is not None and teleport_time <= 0:
            raise SimulationError("teleport_time must be positive when set")
        #: SUMO-style watchdog: a queue-head vehicle waiting longer than
        #: this many seconds on one link is force-moved onto its next
        #: link (ignoring storage) so absolute deadlocks cannot freeze an
        #: evaluation forever.  ``None`` (default) disables teleporting —
        #: the paper-faithful setting where gridlock is gridlock.
        self.teleport_time = teleport_time
        self.teleport_count = 0
        #: Optional :class:`repro.obs.metrics.MetricRegistry` sink
        #: (attached by ``TrafficSignalEnv.attach_telemetry``); one
        #: ``is not None`` check per :meth:`step` call when unset.
        self.metrics = None
        self.phase_plans = phase_plans
        self._opposing_link = self._build_opposing_map()

        self.time = 0
        self.signals: dict[str, SignalState] = {
            node_id: SignalState(plan, yellow_time) for node_id, plan in phase_plans.items()
        }
        self._signal_items: list[tuple[str, SignalState]] = list(self.signals.items())
        self.vehicles: dict[int, Vehicle] = {}
        self.lane_queues: dict[str, deque[Vehicle]] = {
            lane.lane_id: deque() for link in network.links.values() for lane in link.lanes
        }
        self.running: dict[str, list[Vehicle]] = {link_id: [] for link_id in network.links}
        self.link_occupancy: dict[str, int] = {link_id: 0 for link_id in network.links}
        self.insertion_queues: dict[str, deque[Vehicle]] = {}
        self._discharge_credit: dict[str, float] = {
            lane_id: 0.0 for lane_id in self.lane_queues
        }
        self._insertion_credit: dict[str, float] = {}
        self.finished_vehicles: list[Vehicle] = []
        self._total_created = 0
        #: Free-flow traversal ticks per link, resolved once (used by
        #: ``_enter_link`` on both paths; the value is a pure function of
        #: immutable link geometry).
        self._freeflow: dict[str, int] = {
            link_id: link.freeflow_ticks for link_id, link in network.links.items()
        }
        #: (num_lanes, storage) per link for the insertion loop.
        self._insert_caps: dict[str, tuple[int, int]] = {
            link_id: (link.num_lanes, link.storage)
            for link_id, link in network.links.items()
        }
        #: Effective per-link storage, the value every entry check
        #: (discharge spillback, insertion) consults.  Equal to the
        #: static ``link.storage`` until an incident scales it via
        #: :meth:`set_capacity_factor`.
        self._link_storage: dict[str, int] = {
            link_id: link.storage for link_id, link in network.links.items()
        }
        #: Active capacity factors per link (absent = 1.0, healthy).
        self.capacity_factors: dict[str, float] = {}
        #: Optional :class:`repro.faults.incidents.IncidentSchedule`
        #: applied at the start of every tick (lane/link closures).
        self.incidents = None
        self.fast_path = bool(fast_path)
        if self.fast_path:
            self._build_fast_structures()

    # ------------------------------------------------------------------
    # Fast-path index construction
    # ------------------------------------------------------------------
    def _build_fast_structures(self) -> None:
        network = self.network
        #: Per-phase approach-green sets per signalized node: phase index
        #: → set of in-links with a green THROUGH/RIGHT movement.
        self._approach_green: dict[str, list[frozenset[str]]] = {}
        for node_id, plan in self.phase_plans.items():
            per_phase = []
            for phase in plan.phases:
                greens = set()
                for green_in, green_out in phase.green_movements:
                    movement = network.movements.get((green_in, green_out))
                    if movement is not None and movement.turn in (
                        TurnType.THROUGH,
                        TurnType.RIGHT,
                    ):
                        greens.add(green_in)
                per_phase.append(frozenset(greens))
            self._approach_green[node_id] = per_phase

        #: Lane records in the exact reference discharge order, plus a
        #: stable lane_id → array-index map.  Tuples, not objects: the
        #: discharge loop unpacks them in the ``for`` header, which beats
        #: per-field attribute access on the hottest path.
        self._lane_records: list[
            tuple[int, deque, str, SignalState | None, list[frozenset[str]] | None]
        ] = []
        self._lane_index: dict[str, int] = {}
        for link in network.links.values():
            signal = self.signals.get(link.to_node)
            greens = self._approach_green.get(link.to_node) if signal else None
            for lane in link.lanes:
                index = len(self._lane_records)
                lane_id = lane.lane_id
                self._lane_records.append(
                    (index, self.lane_queues[lane_id], link.link_id, signal, greens)
                )
                self._lane_index[lane_id] = index
        #: Discharge credit as a flat array (fast path's replacement for
        #: the ``_discharge_credit`` dict — see :meth:`discharge_credit`).
        self._credit = np.zeros(len(self._lane_records), dtype=np.float64)
        #: Statically-blocked-head memo (parallel lists indexed like the
        #: credit array): a head vehicle denied for reasons that depend
        #: only on (head, phase, yellow) — red light, yellow, or a left
        #: turn whose approach has no green — stays denied while the same
        #: head faces the same signal state (its route position is frozen
        #: while queued), so the permission logic can be skipped
        #: wholesale.  Dynamic denials (opposing traffic, spillback) are
        #: never memoized.
        lane_count = len(self._lane_records)
        self._red_head = [-1] * lane_count
        self._red_phase = [-1] * lane_count
        self._red_yellow = [False] * lane_count
        #: Array indices of all incoming lanes per signalized node, for
        #: the startup-lost-time fancy-index write.
        self._node_lane_indices: dict[str, np.ndarray] = {
            node_id: np.asarray(
                [
                    self._lane_index[lane.lane_id]
                    for link_id in network.nodes[node_id].incoming
                    for lane in network.links[link_id].lanes
                ],
                dtype=np.intp,
            )
            for node_id in self.signals
        }

        #: Candidate lanes per movement (and per link for exiting
        #: vehicles): (in_link, out_link|None) → (lane_capacity,
        #: [(lane_id, queue), ...]).  Replaces ``_choose_lane``'s
        #: per-call ``lanes_for_movement`` recomputation.
        self._move_candidates: dict[tuple[str, str | None], tuple[int, list]] = {}
        for (in_link, out_link), movement in network.movements.items():
            link = network.links[in_link]
            lanes = [
                (lane.lane_id, self.lane_queues[lane.lane_id])
                for lane in network.lanes_for_movement(movement)
            ]
            self._move_candidates[(in_link, out_link)] = (link.lane_capacity, lanes)
        for link_id, link in network.links.items():
            lanes = [
                (lane.lane_id, self.lane_queues[lane.lane_id]) for lane in link.lanes
            ]
            self._move_candidates[(link_id, None)] = (link.lane_capacity, lanes)

        self._move_turn: dict[tuple[str, str], TurnType] = {
            key: movement.turn for key, movement in network.movements.items()
        }
        #: Opposing-approach lookup for the permissive-left gap check:
        #: in_link → None | (opposing_link_id, [queues], length, speed).
        self._opposing_data: dict[str, tuple | None] = {}
        for in_link, opposing in self._opposing_link.items():
            if opposing is None:
                self._opposing_data[in_link] = None
            else:
                link = network.links[opposing]
                self._opposing_data[in_link] = (
                    opposing,
                    [self.lane_queues[lane.lane_id] for lane in link.lanes],
                    link.length,
                    link.speed_limit,
                )
        #: Blocked-retry memo: lane choice is a pure function of the
        #: link's queue lengths, so a vehicle that failed to find a lane
        #: need not retry until one of its link's queues changed.  Every
        #: queue mutation bumps the link's version counter.
        self._queue_version: dict[str, int] = {link_id: 0 for link_id in network.links}
        self._blocked_at_version: dict[int, int] = {}
        #: Per-link advance fast-out: ``link_id → (version, count)``
        #: recording that the link's first ``count`` running vehicles are
        #: all blocked as of queue-version ``version``.  While the
        #: version is unchanged and no further vehicle has arrived, the
        #: whole link can be skipped.
        self._advance_skip: dict[str, tuple[int, int]] = {}

    # ------------------------------------------------------------------
    # Agent-facing control surface
    # ------------------------------------------------------------------
    def set_phase(self, node_id: str, phase_index: int) -> None:
        """Request a phase for a signalized intersection."""
        self.signals[node_id].request_phase(phase_index)

    def set_capacity_factor(self, link_id: str, factor: float) -> None:
        """Scale a link's effective storage (incident modelling).

        ``factor`` in ``[0, 1]`` multiplies the link's static storage:
        ``0.0`` is a full closure (nothing may enter; vehicles already
        on the link keep moving and drain out), fractions model partial
        lane closures.  Every entry check — discharge spillback and
        origin insertion — consults the effective value each attempt, so
        factors may change at any tick and the change takes effect
        immediately.  ``1.0`` restores the healthy capacity.
        """
        link = self.network.links.get(link_id)
        if link is None:
            raise SimulationError(f"unknown link {link_id!r}")
        if not 0.0 <= factor <= 1.0:
            raise SimulationError(
                f"capacity factor must lie in [0, 1], got {factor}"
            )
        effective = int(link.storage * factor)
        self._link_storage[link_id] = effective
        self._insert_caps[link_id] = (link.num_lanes, effective)
        if factor >= 1.0:
            self.capacity_factors.pop(link_id, None)
        else:
            self.capacity_factors[link_id] = factor

    def run_fixed_time(self, programs: dict[str, FixedTimeProgram], ticks: int) -> None:
        """Drive all signals from fixed-time programs for ``ticks`` seconds."""
        entries = [
            (self.signals[node_id], program) for node_id, program in programs.items()
        ]
        for _ in range(ticks):
            t = self.time
            for signal, program in entries:
                signal.request_phase(program.phase_at(t))
            self._step_once()

    # ------------------------------------------------------------------
    # Core stepping
    # ------------------------------------------------------------------
    def step(self, ticks: int = 1) -> None:
        """Advance the simulation by ``ticks`` seconds."""
        for _ in range(ticks):
            self._step_once()
        if self.metrics is not None:
            self.metrics.count("sim.ticks", ticks)

    def _step_once(self) -> None:
        if self.incidents is not None:
            self.incidents.apply(self)
        self._update_signals()
        if self.fast_path:
            self._discharge_queues_fast()
        else:
            self._discharge_queues()
        if self.teleport_time is not None:
            self._teleport_stuck()
        if self.fast_path:
            self._advance_running_fast()
        else:
            self._advance_running()
        self._insert_pending()
        self._generate_demand()
        # Queued vehicles' waits accrue lazily from the clock (see
        # Vehicle.wait_total); no per-vehicle sweep is needed here.
        self.time += 1

    def _dequeue_head(self, queue: deque, link_id: str) -> Vehicle:
        """Shared dequeue bookkeeping for a vehicle leaving a lane queue.

        Pops the head, releases its storage slot, and (fast path)
        invalidates the memos keyed on this link's queue state.  Lazy
        wait materialization is *not* done here: both exits from a queue
        (``_finish_vehicle`` and ``_enter_link``) materialize the wait
        themselves, so the counters stay exact on every path.  The
        discharge loops inline these same operations on their hot path —
        any change here must be mirrored there; the teleporting lockstep
        test in ``tests/sim/test_engine_equivalence.py`` pins the pair.
        """
        head = queue.popleft()
        self.link_occupancy[link_id] -= 1
        if self.fast_path:
            self._queue_version[link_id] += 1
        return head

    def _teleport_stuck(self) -> None:
        """Force queue heads stuck beyond ``teleport_time`` onto their
        next link (or out of the network), ignoring signal and storage.

        At most one vehicle teleports per lane per tick (each lane's
        head is examined exactly once), and the dequeue uses the same
        bookkeeping as the discharge paths via :meth:`_dequeue_head`.
        """
        for lane_id, queue in self.lane_queues.items():
            if not queue:
                continue
            head = queue[0]
            if head.wait_current_link <= self.teleport_time:
                continue
            self._dequeue_head(queue, head.current_link)
            self.teleport_count += 1
            if head.next_link is None:
                self._finish_vehicle(head)
            else:
                self._enter_link(head, head.next_link)

    def _update_signals(self) -> None:
        for node_id, signal in self._signal_items:
            signal.tick()
            if signal.just_switched:
                signal.just_switched = False
                self._apply_startup_lost_time(node_id)

    def _apply_startup_lost_time(self, node_id: str) -> None:
        """Penalise discharge credit of all approaches after a phase switch."""
        penalty = self.startup_lost_time * self.saturation_rate
        if penalty <= 0:
            return
        if self.fast_path:
            self._credit[self._node_lane_indices[node_id]] = -penalty
            return
        for link_id in self.network.nodes[node_id].incoming:
            for lane in self.network.links[link_id].lanes:
                self._discharge_credit[lane.lane_id] = -penalty

    def _build_opposing_map(self) -> dict[str, str | None]:
        """For each incoming link of a signalized node, the incoming link
        arriving from the opposite direction (or None)."""
        opposing: dict[str, str | None] = {}
        for node_id in self.network.signalized_nodes():
            incoming = self.network.nodes[node_id].incoming
            headings = {l: self.network.link_heading(l) for l in incoming}
            for link_id in incoming:
                hx, hy = headings[link_id]
                best = None
                for other in incoming:
                    if other == link_id:
                        continue
                    ox, oy = headings[other]
                    if hx * ox + hy * oy < -0.7:  # roughly head-on
                        best = other
                        break
                opposing[link_id] = best
        return opposing

    def _opposing_clear(self, in_link: str) -> bool:
        """Gap acceptance: is the opposing approach free of conflicts?"""
        opposing = self._opposing_link.get(in_link)
        if opposing is None:
            return True
        link = self.network.links[opposing]
        for lane in link.lanes:
            if self.lane_queues[lane.lane_id]:
                return False
        for vehicle in self.running[opposing]:
            travelled = link.speed_limit * (self.time - vehicle.run_start)
            if link.length - travelled <= self.permissive_gap_m:
                return False
        return True

    def _opposing_clear_fast(self, in_link: str) -> bool:
        data = self._opposing_data.get(in_link)
        if data is None:
            return True
        opposing, queues, length, speed = data
        for queue in queues:
            if queue:
                return False
        gap = self.permissive_gap_m
        time = self.time
        for vehicle in self.running[opposing]:
            travelled = speed * (time - vehicle.run_start)
            if length - travelled <= gap:
                return False
        return True

    def _movement_permitted(self, vehicle: Vehicle) -> bool:
        """May this queue-head vehicle cross the intersection this tick?

        A movement proceeds when its phase is green (protected), or — for
        left turns with ``permissive_left`` enabled — when the same
        approach currently has a green through/right movement and the
        opposing approach is clear (permitted left, as in SUMO's shared
        through/left lanes).
        """
        link = self.network.links[vehicle.current_link]
        node_id = link.to_node
        next_link = vehicle.next_link
        if next_link is None:
            return True  # exiting at an unsignalized terminal via queue
        signal = self.signals.get(node_id)
        if signal is None:
            return True  # unsignalized node: always permitted
        key = (vehicle.current_link, next_link)
        if signal.permits(key):
            return True
        if not self.permissive_left or signal.in_yellow:
            return False
        movement = self.network.movements.get(key)
        if movement is None or movement.turn is not TurnType.LEFT:
            return False
        phase = signal.current_phase
        approach_has_green = any(
            green_in == vehicle.current_link
            and self.network.movements[(green_in, green_out)].turn
            in (TurnType.THROUGH, TurnType.RIGHT)
            for green_in, green_out in phase.green_movements
        )
        if not approach_has_green:
            return False
        return self._opposing_clear(vehicle.current_link)

    def _discharge_queues(self) -> None:
        for link in self.network.links.values():
            for lane in link.lanes:
                lane_id = lane.lane_id
                queue = self.lane_queues[lane_id]
                credit = min(self._discharge_credit[lane_id] + self.saturation_rate, 1.0)
                while queue and credit >= 1.0:
                    head = queue[0]
                    if not self._movement_permitted(head):
                        break  # head-of-line blocking
                    next_link_id = head.next_link
                    if next_link_id is None:
                        # Exit the network from the queue.
                        queue.popleft()
                        self.link_occupancy[link.link_id] -= 1
                        self._finish_vehicle(head)
                        credit -= 1.0
                        continue
                    if self.link_occupancy[next_link_id] >= self._link_storage[next_link_id]:
                        break  # spillback: downstream full
                    queue.popleft()
                    self.link_occupancy[link.link_id] -= 1
                    self._enter_link(head, next_link_id)
                    credit -= 1.0
                self._discharge_credit[lane_id] = credit if queue else 0.0

    def _discharge_queues_fast(self) -> None:
        """Index-precomputed twin of :meth:`_discharge_queues`.

        Same iteration order, same credit arithmetic, same permission
        logic — but all per-tick dict/property lookups are resolved
        through the structures built in :meth:`_build_fast_structures`,
        and ``_movement_permitted`` is inlined.
        """
        credit_arr = self._credit
        # Work on a plain-float list and bulk-write back: per-element
        # numpy scalar indexing costs more than the whole conversion.
        credits = credit_arr.tolist()
        rate = self.saturation_rate
        occupancy = self.link_occupancy
        storage = self._link_storage
        versions = self._queue_version
        permissive = self.permissive_left
        move_turn = self._move_turn
        left = TurnType.LEFT
        red_head = self._red_head
        red_phase = self._red_phase
        red_yellow = self._red_yellow
        for index, queue, link_id, signal, greens in self._lane_records:
            if not queue:
                if credits[index]:
                    credits[index] = 0.0
                continue
            if (
                signal is not None
                and red_head[index] == queue[0].vehicle_id
                and red_phase[index] == signal.current_phase_index
                and red_yellow[index] == (signal.yellow_remaining > 0)
            ):
                # Same statically-blocked head under the same signal
                # state: only the credit accrues this tick.
                credit = credits[index] + rate
                credits[index] = credit if credit < 1.0 else 1.0
                continue
            credit = credits[index] + rate
            if credit > 1.0:
                credit = 1.0
            while credit >= 1.0:
                head = queue[0]
                route = head.route
                next_index = head.route_index + 1
                next_link_id = route[next_index] if next_index < len(route) else None
                static_block = False
                if next_link_id is None or signal is None:
                    permitted = True
                elif signal.yellow_remaining > 0:
                    permitted = False
                    static_block = True
                else:
                    key = (link_id, next_link_id)
                    phase_index = signal.current_phase_index
                    if key in signal.plan.phases[phase_index].green_movements:
                        permitted = True
                    elif (
                        not permissive
                        or move_turn.get(key) is not left
                        or link_id not in greens[phase_index]
                    ):
                        permitted = False
                        static_block = True
                    else:
                        permitted = self._opposing_clear_fast(link_id)
                if not permitted:
                    if static_block:
                        red_head[index] = head.vehicle_id
                        red_phase[index] = signal.current_phase_index
                        red_yellow[index] = signal.yellow_remaining > 0
                    break  # head-of-line blocking
                if next_link_id is None:
                    # Exit the network from the queue.
                    queue.popleft()
                    occupancy[link_id] -= 1
                    versions[link_id] += 1
                    self._finish_vehicle(head)
                    credit -= 1.0
                elif occupancy[next_link_id] >= storage[next_link_id]:
                    break  # spillback: downstream full
                else:
                    queue.popleft()
                    occupancy[link_id] -= 1
                    versions[link_id] += 1
                    self._enter_link(head, next_link_id)
                    credit -= 1.0
                if not queue:
                    break
            credits[index] = credit if queue else 0.0
        credit_arr[:] = credits

    def _enter_link(self, vehicle: Vehicle, link_id: str) -> None:
        vehicle.route_index += 1
        if vehicle.route[vehicle.route_index] != link_id:
            raise SimulationError(
                f"vehicle {vehicle.vehicle_id} routed onto {link_id!r} but route says "
                f"{vehicle.route[vehicle.route_index]!r}"
            )
        vehicle.state = VehicleState.RUNNING
        vehicle.lane_id = None
        vehicle.run_start = self.time
        vehicle.run_arrival = self.time + self._freeflow[link_id]
        self._materialize_wait(vehicle)
        vehicle.wait_link_base = 0
        vehicle.links_travelled += 1
        self.running[link_id].append(vehicle)
        self.link_occupancy[link_id] += 1

    def _choose_lane(self, vehicle: Vehicle) -> Lane | None:
        """Shortest candidate lane permitting the vehicle's next movement."""
        link = self.network.links[vehicle.current_link]
        next_link = vehicle.next_link
        if next_link is None:
            candidates = link.lanes
        else:
            movement = self.network.movements.get((vehicle.current_link, next_link))
            if movement is None:
                raise SimulationError(
                    f"vehicle {vehicle.vehicle_id} needs undeclared movement "
                    f"({vehicle.current_link!r}, {next_link!r})"
                )
            candidates = self.network.lanes_for_movement(movement)
        best: Lane | None = None
        best_len = None
        for lane in candidates:
            queue_len = len(self.lane_queues[lane.lane_id])
            if queue_len >= link.lane_capacity:
                continue
            if best is None or queue_len < best_len:
                best, best_len = lane, queue_len
        return best

    def _advance_running(self) -> None:
        for link_id, running in self.running.items():
            if not running:
                continue
            still_running: list[Vehicle] = []
            for vehicle in running:
                if vehicle.run_arrival > self.time:
                    still_running.append(vehicle)
                    continue
                if vehicle.on_last_link:
                    # Reached the end of its final link: leave the network.
                    self.link_occupancy[link_id] -= 1
                    self._finish_vehicle(vehicle)
                    continue
                lane = self._choose_lane(vehicle)
                if lane is None:
                    # All candidate lanes full: remain (blocked) on the link.
                    still_running.append(vehicle)
                    continue
                vehicle.state = VehicleState.QUEUED
                vehicle.lane_id = lane.lane_id
                vehicle.wait_anchor = self.time
                vehicle.wait_clock = self
                self.lane_queues[lane.lane_id].append(vehicle)
            self.running[link_id] = still_running

    def _advance_running_fast(self) -> None:
        """Ordering-aware twin of :meth:`_advance_running`.

        Exploits two invariants the reference loop does not:

        * ``running`` lists are sorted by non-decreasing ``run_arrival``
          (appends use ``time + freeflow_ticks`` with constant per-link
          free-flow time, and blocked vehicles — which have already
          arrived — are re-queued ahead of in-flight ones), so only the
          arrived *prefix* needs processing;
        * lane choice is a pure function of the link's queue lengths, so
          a blocked vehicle need not retry ``_choose_lane`` until the
          link's queue-version counter changes.
        """
        time = self.time
        occupancy = self.link_occupancy
        versions = self._queue_version
        blocked_at = self._blocked_at_version
        candidates_map = self._move_candidates
        advance_skip = self._advance_skip
        for link_id, running in self.running.items():
            if not running or running[0].run_arrival > time:
                continue
            skip = advance_skip.get(link_id)
            if skip is not None and skip[0] == versions[link_id]:
                count = skip[1]
                if len(running) == count or running[count].run_arrival > time:
                    continue  # same blocked prefix, nothing new arrived
            held: list[Vehicle] = []
            boundary = len(running)
            uniform = True
            for position, vehicle in enumerate(running):
                if vehicle.run_arrival > time:
                    boundary = position
                    break
                route = vehicle.route
                route_index = vehicle.route_index
                if route_index == len(route) - 1:
                    # Reached the end of its final link: leave the network.
                    occupancy[link_id] -= 1
                    self._finish_vehicle(vehicle)
                    continue
                vehicle_id = vehicle.vehicle_id
                version = versions[link_id]
                if blocked_at.get(vehicle_id) == version:
                    held.append(vehicle)  # queues unchanged since last try
                    continue
                entry = candidates_map.get((link_id, route[route_index + 1]))
                if entry is None:
                    raise SimulationError(
                        f"vehicle {vehicle_id} needs undeclared movement "
                        f"({link_id!r}, {route[route_index + 1]!r})"
                    )
                capacity, lanes = entry
                best_lane_id = None
                best_queue = None
                best_len = 0
                for lane_id, lane_queue in lanes:
                    queue_len = len(lane_queue)
                    if queue_len >= capacity:
                        continue
                    if best_queue is None or queue_len < best_len:
                        best_lane_id, best_queue, best_len = lane_id, lane_queue, queue_len
                if best_queue is None:
                    # All candidate lanes full: remain (blocked) on the link.
                    blocked_at[vehicle_id] = version
                    held.append(vehicle)
                    continue
                blocked_at.pop(vehicle_id, None)
                vehicle.state = VehicleState.QUEUED
                vehicle.lane_id = best_lane_id
                vehicle.wait_anchor = time
                vehicle.wait_clock = self
                best_queue.append(vehicle)
                versions[link_id] = version + 1
                if held:
                    # Earlier holds were recorded at a now-stale version.
                    uniform = False
            self.running[link_id] = held + running[boundary:]
            if uniform and held:
                advance_skip[link_id] = (versions[link_id], len(held))
            elif skip is not None:
                del advance_skip[link_id]

    def _insert_pending(self) -> None:
        for link_id, pending in self.insertion_queues.items():
            if not pending:
                continue
            num_lanes, storage = self._insert_caps[link_id]
            credit = min(
                self._insertion_credit.get(link_id, 0.0)
                + self.saturation_rate * num_lanes,
                float(num_lanes),
            )
            while pending and credit >= 1.0:
                if self.link_occupancy[link_id] >= storage:
                    # Spillback parity with lane discharge credit: while
                    # the origin link is full, banked insertion credit is
                    # capped at one vehicle (a lane's cap), so the
                    # unblock tick inserts at most 1 + that tick's
                    # accrual instead of bursting the whole blocked
                    # window (DESIGN.md, "Insertion-credit semantics").
                    credit = 1.0
                    break
                vehicle = pending.popleft()
                vehicle.inserted = self.time
                vehicle.route_index = -1  # _enter_link advances to 0
                self._enter_link(vehicle, link_id)
                credit -= 1.0
            self._insertion_credit[link_id] = credit if pending else 0.0

    def _generate_demand(self) -> None:
        if self.demand is None:
            return
        for vehicle_id, route in self.demand.emit(self.time):
            vehicle = Vehicle(vehicle_id=vehicle_id, route=route, created=self.time)
            self.vehicles[vehicle_id] = vehicle
            self.insertion_queues.setdefault(route[0], deque()).append(vehicle)
            self._total_created += 1

    def _materialize_wait(self, vehicle: Vehicle) -> None:
        """Fold the clock-derived wait of a dequeued vehicle into its
        stored counters (see :class:`Vehicle` queue bookkeeping)."""
        anchor = vehicle.wait_anchor
        if anchor >= 0:
            waited = self.time - anchor
            vehicle.wait_base += waited
            vehicle.wait_link_base = waited
            vehicle.wait_anchor = -1
            vehicle.wait_clock = None

    def _finish_vehicle(self, vehicle: Vehicle) -> None:
        self._materialize_wait(vehicle)
        vehicle.state = VehicleState.FINISHED
        vehicle.finished = self.time
        vehicle.lane_id = None
        self.finished_vehicles.append(vehicle)

    # ------------------------------------------------------------------
    # Introspection used by detectors / metrics / agents
    # ------------------------------------------------------------------
    def discharge_credit(self, lane_id: str) -> float:
        """Current discharge credit of a lane (diagnostics/tests).

        Unknown lane ids raise :class:`~repro.errors.SimulationError`
        with the same message on both ``fast_path`` settings (the fast
        path resolves through ``_lane_index``, the slow path through
        ``_discharge_credit``; both key sets equal the network's lanes).
        """
        try:
            if self.fast_path:
                return float(self._credit[self._lane_index[lane_id]])
            return self._discharge_credit[lane_id]
        except KeyError:
            raise SimulationError(f"unknown lane id {lane_id!r}") from None

    def queue_length(self, lane_id: str) -> int:
        """Vehicles halted in a lane (ground truth, unlimited range)."""
        try:
            return len(self.lane_queues[lane_id])
        except KeyError:
            raise SimulationError(f"unknown lane id {lane_id!r}") from None

    def halting_count(self, link_id: str) -> int:
        """Total halted vehicles across a link's lanes."""
        try:
            link = self.network.links[link_id]
        except KeyError:
            raise SimulationError(f"unknown link id {link_id!r}") from None
        return sum(len(self.lane_queues[lane.lane_id]) for lane in link.lanes)

    def head_wait(self, lane_id: str) -> int:
        """Accumulated wait (s) of the first vehicle in a lane, 0 if empty."""
        try:
            queue = self.lane_queues[lane_id]
        except KeyError:
            raise SimulationError(f"unknown lane id {lane_id!r}") from None
        if not queue:
            return 0
        return queue[0].wait_current_link

    def link_head_wait(self, link_id: str) -> int:
        """Maximum head wait across a link's lanes (paper's link-level wait)."""
        try:
            link = self.network.links[link_id]
        except KeyError:
            raise SimulationError(f"unknown link id {link_id!r}") from None
        return max(self.head_wait(lane.lane_id) for lane in link.lanes)

    def vehicles_in_network(self) -> int:
        return sum(self.link_occupancy.values())

    def pending_insertions(self) -> int:
        return sum(len(queue) for queue in self.insertion_queues.values())

    @property
    def total_created(self) -> int:
        return self._total_created

    def is_drained(self) -> bool:
        """True when no vehicle remains anywhere in the system."""
        return self.vehicles_in_network() == 0 and self.pending_insertions() == 0
