"""Road-network data model: nodes, links, lanes, movements.

This is the static description of the world the simulator runs on.  The
model follows the paper's intersection design (Section VI-A): directed
links between nodes, one or more lanes per link, and *movements*
(in-link -> out-link turns) that may share a lane — the configuration that
produces head-of-line blocking, which the paper calls out as essential for
realism.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import Enum

from repro.errors import NetworkError

#: Space one stored (queued) vehicle occupies, metres.  SUMO's default
#: vehicle length + minimum gap is 5 m + 2.5 m.
VEHICLE_SPACE_M = 7.5


class TurnType(Enum):
    """Classification of a movement by heading change."""

    LEFT = "left"
    THROUGH = "through"
    RIGHT = "right"
    UTURN = "uturn"


MovementKey = tuple[str, str]
"""A movement is identified by its ``(in_link_id, out_link_id)`` pair."""


@dataclass(frozen=True)
class Movement:
    """A permitted turn from one link onto another at a node."""

    in_link: str
    out_link: str
    turn: TurnType

    @property
    def key(self) -> MovementKey:
        return (self.in_link, self.out_link)


@dataclass
class Lane:
    """One lane of a link.

    ``allowed_turns`` lists the turn types vehicles in this lane may take;
    a lane with more than one entry is a *shared* lane (e.g. the paper's
    combined through/right arterial lane).
    """

    link_id: str
    index: int
    allowed_turns: frozenset[TurnType]

    @property
    def lane_id(self) -> str:
        return f"{self.link_id}#{self.index}"


@dataclass
class Link:
    """A directed road between two nodes."""

    link_id: str
    from_node: str
    to_node: str
    length: float
    speed_limit: float
    lanes: list[Lane] = field(default_factory=list)

    @property
    def num_lanes(self) -> int:
        return len(self.lanes)

    @property
    def freeflow_ticks(self) -> int:
        """Free-flow traversal time in whole 1-second ticks (at least 1)."""
        return max(1, int(math.ceil(self.length / self.speed_limit)))

    @property
    def lane_capacity(self) -> int:
        """Vehicles one lane can store bumper-to-bumper."""
        return max(1, int(self.length // VEHICLE_SPACE_M))

    @property
    def storage(self) -> int:
        """Total vehicles the link can hold."""
        return self.lane_capacity * self.num_lanes


@dataclass
class Node:
    """An intersection or terminal point of the network."""

    node_id: str
    x: float
    y: float
    signalized: bool = False
    incoming: list[str] = field(default_factory=list)
    outgoing: list[str] = field(default_factory=list)


def classify_turn(
    in_heading: tuple[float, float], out_heading: tuple[float, float]
) -> TurnType:
    """Classify a turn from unit heading vectors using the signed angle.

    Angles within +-45 degrees are THROUGH; positive (counter-clockwise)
    turns up to ~135 degrees are LEFT, negative are RIGHT; anything beyond
    is a U-turn.
    """
    ix, iy = in_heading
    ox, oy = out_heading
    cross = ix * oy - iy * ox
    dot = ix * ox + iy * oy
    angle = math.degrees(math.atan2(cross, dot))
    if -45.0 <= angle <= 45.0:
        return TurnType.THROUGH
    if 45.0 < angle <= 135.0:
        return TurnType.LEFT
    if -135.0 <= angle < -45.0:
        return TurnType.RIGHT
    return TurnType.UTURN


class RoadNetwork:
    """Container and index for the static road network.

    Build with :meth:`add_node` / :meth:`add_link` / :meth:`add_movement`,
    then call :meth:`validate` once before simulation.
    """

    def __init__(self) -> None:
        self.nodes: dict[str, Node] = {}
        self.links: dict[str, Link] = {}
        self.movements: dict[MovementKey, Movement] = {}
        self._movements_by_in_link: dict[str, list[Movement]] = {}
        self._movements_by_node: dict[str, list[Movement]] = {}
        self._heading_cache: dict[str, tuple[float, float]] = {}
        self._validated = False

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self, node_id: str, x: float, y: float, signalized: bool = False) -> Node:
        if node_id in self.nodes:
            raise NetworkError(f"duplicate node id {node_id!r}")
        node = Node(node_id, float(x), float(y), signalized)
        self.nodes[node_id] = node
        self._validated = False
        return node

    def add_link(
        self,
        link_id: str,
        from_node: str,
        to_node: str,
        length: float,
        num_lanes: int,
        speed_limit: float = 13.89,
        lane_turns: list[frozenset[TurnType]] | None = None,
    ) -> Link:
        """Add a directed link.

        ``lane_turns`` optionally assigns permitted turn types per lane
        (index 0 = leftmost lane); by default every lane permits every
        turn.
        """
        if link_id in self.links:
            raise NetworkError(f"duplicate link id {link_id!r}")
        if from_node not in self.nodes or to_node not in self.nodes:
            raise NetworkError(f"link {link_id!r} references unknown node")
        if from_node == to_node:
            raise NetworkError(f"link {link_id!r} is a self-loop")
        if length <= 0 or num_lanes <= 0 or speed_limit <= 0:
            raise NetworkError(f"link {link_id!r} has non-positive geometry")
        link = Link(link_id, from_node, to_node, float(length), float(speed_limit))
        if lane_turns is None:
            lane_turns = [frozenset(TurnType)] * num_lanes
        if len(lane_turns) != num_lanes:
            raise NetworkError(
                f"link {link_id!r}: {len(lane_turns)} lane_turns for {num_lanes} lanes"
            )
        for index, turns in enumerate(lane_turns):
            link.lanes.append(Lane(link_id, index, frozenset(turns)))
        self.links[link_id] = link
        self.nodes[from_node].outgoing.append(link_id)
        self.nodes[to_node].incoming.append(link_id)
        self._validated = False
        return link

    def add_movement(
        self, in_link: str, out_link: str, turn: TurnType | None = None
    ) -> Movement:
        """Declare that traffic may turn from ``in_link`` onto ``out_link``.

        The turn type is classified from geometry when not given.
        """
        if in_link not in self.links or out_link not in self.links:
            raise NetworkError(f"movement ({in_link!r}, {out_link!r}) references unknown link")
        a, b = self.links[in_link], self.links[out_link]
        if a.to_node != b.from_node:
            raise NetworkError(
                f"movement ({in_link!r}, {out_link!r}) links do not meet at a node"
            )
        if (in_link, out_link) in self.movements:
            raise NetworkError(f"duplicate movement ({in_link!r}, {out_link!r})")
        if turn is None:
            turn = classify_turn(self.link_heading(in_link), self.link_heading(out_link))
        movement = Movement(in_link, out_link, turn)
        self.movements[movement.key] = movement
        self._movements_by_in_link.setdefault(in_link, []).append(movement)
        self._movements_by_node.setdefault(a.to_node, []).append(movement)
        self._validated = False
        return movement

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def link_heading(self, link_id: str) -> tuple[float, float]:
        """Unit direction vector of a link.

        Node coordinates are fixed once a link exists, so headings are
        cached after the first computation.
        """
        cached = self._heading_cache.get(link_id)
        if cached is not None:
            return cached
        link = self.links[link_id]
        a, b = self.nodes[link.from_node], self.nodes[link.to_node]
        dx, dy = b.x - a.x, b.y - a.y
        norm = math.hypot(dx, dy)
        if norm == 0:
            raise NetworkError(f"link {link_id!r} has zero length geometry")
        heading = (dx / norm, dy / norm)
        self._heading_cache[link_id] = heading
        return heading

    def movements_from(self, in_link: str) -> list[Movement]:
        return self._movements_by_in_link.get(in_link, [])

    def movements_at(self, node_id: str) -> list[Movement]:
        return self._movements_by_node.get(node_id, [])

    def lanes_for_movement(self, movement: Movement) -> list[Lane]:
        """Lanes of the in-link a vehicle may use for this movement."""
        link = self.links[movement.in_link]
        return [lane for lane in link.lanes if movement.turn in lane.allowed_turns]

    def movements_for_lane(self, lane: Lane) -> list[Movement]:
        """Movements that may be executed from this lane."""
        return [
            m
            for m in self.movements_from(lane.link_id)
            if m.turn in lane.allowed_turns
        ]

    def signalized_nodes(self) -> list[str]:
        return [nid for nid, node in self.nodes.items() if node.signalized]

    def neighbours(self, node_id: str) -> list[str]:
        """Signalized intersections directly connected to ``node_id``."""
        found: list[str] = []
        node = self.nodes[node_id]
        for link_id in node.incoming + node.outgoing:
            link = self.links[link_id]
            other = link.from_node if link.to_node == node_id else link.to_node
            if self.nodes[other].signalized and other != node_id and other not in found:
                found.append(other)
        return found

    def upstream_neighbours(self, node_id: str) -> list[str]:
        """Signalized intersections with a link *into* ``node_id``.

        These are the candidate communication partners in PairUpLight —
        the intersections whose congestion will arrive here next.
        """
        found: list[str] = []
        for link_id in self.nodes[node_id].incoming:
            other = self.links[link_id].from_node
            if self.nodes[other].signalized and other not in found:
                found.append(other)
        return found

    def two_hop_neighbours(self, node_id: str) -> list[str]:
        """Signalized intersections exactly two hops away."""
        one_hop = set(self.neighbours(node_id))
        found: list[str] = []
        for mid in one_hop:
            for far in self.neighbours(mid):
                if far != node_id and far not in one_hop and far not in found:
                    found.append(far)
        return found

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check structural consistency; raises :class:`NetworkError`."""
        for key, movement in self.movements.items():
            if not self.lanes_for_movement(movement):
                raise NetworkError(f"movement {key} has no lane permitting its turn")
        for node_id, node in self.nodes.items():
            if node.signalized and not self.movements_at(node_id):
                raise NetworkError(f"signalized node {node_id!r} has no movements")
        self._validated = True

    @property
    def validated(self) -> bool:
        return self._validated
