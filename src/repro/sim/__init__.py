"""Mesoscopic traffic simulator (SUMO substitute — see DESIGN.md).

Public surface:

* :class:`~repro.sim.network.RoadNetwork` and its parts
  (:class:`~repro.sim.network.Node`, :class:`~repro.sim.network.Link`,
  :class:`~repro.sim.network.Lane`, :class:`~repro.sim.network.Movement`,
  :class:`~repro.sim.network.TurnType`).
* :class:`~repro.sim.signal.Phase` / :class:`~repro.sim.signal.PhasePlan` /
  :class:`~repro.sim.signal.FixedTimeProgram`.
* :class:`~repro.sim.demand.Flow` / :class:`~repro.sim.demand.RateProfile` /
  :class:`~repro.sim.demand.DemandGenerator`.
* :class:`~repro.sim.routing.Router`.
* :class:`~repro.sim.engine.Simulation` — the stepping engine.
* :class:`~repro.sim.detectors.DetectorSuite` — range-limited sensing.
* :mod:`~repro.sim.metrics` — travel/waiting-time statistics.
"""

from repro.sim.demand import DemandGenerator, Flow, RateProfile
from repro.sim.detectors import DEFAULT_COVERAGE_M, DetectorSuite
from repro.sim.engine import (
    DEFAULT_SATURATION_RATE,
    DEFAULT_STARTUP_LOST_TIME,
    Simulation,
)
from repro.sim.metrics import (
    EpisodeRecorder,
    TravelTimeStats,
    average_travel_time,
    intersection_max_wait,
    network_average_wait,
    travel_time_stats,
)
from repro.sim.network import (
    VEHICLE_SPACE_M,
    Lane,
    Link,
    Movement,
    MovementKey,
    Node,
    RoadNetwork,
    TurnType,
    classify_turn,
)
from repro.sim.io import (
    load_scenario,
    network_from_dict,
    network_to_dict,
    save_scenario,
)
from repro.sim.render import grid_map, occupancy_table
from repro.sim.routing import Router
from repro.sim.tripinfo import (
    DelayDecomposition,
    ODSummary,
    TripRecord,
    all_trips,
    format_od_table,
    od_summaries,
    trip_record,
)
from repro.sim.signal import (
    FixedTimeProgram,
    Phase,
    PhasePlan,
    SignalState,
    default_four_phase_plan,
)
from repro.sim.vehicle import Vehicle, VehicleState

__all__ = [
    "DEFAULT_COVERAGE_M",
    "DEFAULT_SATURATION_RATE",
    "DEFAULT_STARTUP_LOST_TIME",
    "DelayDecomposition",
    "DemandGenerator",
    "DetectorSuite",
    "EpisodeRecorder",
    "FixedTimeProgram",
    "Flow",
    "Lane",
    "Link",
    "Movement",
    "MovementKey",
    "Node",
    "ODSummary",
    "Phase",
    "PhasePlan",
    "RateProfile",
    "RoadNetwork",
    "Router",
    "SignalState",
    "Simulation",
    "TravelTimeStats",
    "TripRecord",
    "TurnType",
    "VEHICLE_SPACE_M",
    "Vehicle",
    "VehicleState",
    "all_trips",
    "average_travel_time",
    "classify_turn",
    "default_four_phase_plan",
    "format_od_table",
    "grid_map",
    "intersection_max_wait",
    "load_scenario",
    "network_average_wait",
    "network_from_dict",
    "network_to_dict",
    "occupancy_table",
    "od_summaries",
    "save_scenario",
    "travel_time_stats",
    "trip_record",
]
