"""Traffic demand: time-varying origin-destination flows.

The paper's congestion-generation strategy (Section VI-A) staggers OD
flows in time — eastbound/southbound first, reverse flows starting at
t = 900 s, peaks of 500 veh/h — so the demand model here is a set of
:class:`Flow` objects, each with a piecewise-linear rate profile.

Vehicle emission supports two modes:

* ``stochastic=True`` — Poisson arrivals (per-tick Bernoulli thinning of
  the instantaneous rate), seeded; this mirrors SUMO's randomised depart
  times.
* ``stochastic=False`` — deterministic fractional-accumulator emission,
  useful for exactly-reproducible tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import DemandError
from repro.sim.routing import Router


@dataclass(frozen=True)
class RateProfile:
    """Piecewise-linear flow rate in vehicles/hour.

    ``points`` is a sorted list of ``(time_s, rate_veh_per_hour)``; the
    rate is linearly interpolated between points, constant before the
    first point only if the first point is at t=0, and zero outside the
    span.
    """

    points: tuple[tuple[float, float], ...]

    def __post_init__(self) -> None:
        if not self.points:
            raise DemandError("rate profile needs at least one point")
        times = [t for t, _ in self.points]
        if times != sorted(times):
            raise DemandError("rate profile times must be non-decreasing")
        if any(rate < 0 for _, rate in self.points):
            raise DemandError("rates must be non-negative")

    def rate_at(self, t: float) -> float:
        """Instantaneous rate (veh/h) at time ``t`` seconds."""
        pts = self.points
        if t < pts[0][0] or t > pts[-1][0]:
            return 0.0
        for (t0, r0), (t1, r1) in zip(pts[:-1], pts[1:]):
            if t0 <= t <= t1:
                if t1 == t0:
                    return r1
                frac = (t - t0) / (t1 - t0)
                return r0 + frac * (r1 - r0)
        return pts[-1][1] if t == pts[-1][0] else 0.0

    @property
    def end_time(self) -> float:
        return self.points[-1][0]

    @property
    def peak_rate(self) -> float:
        return max(rate for _, rate in self.points)

    @staticmethod
    def constant(rate: float, duration: float) -> "RateProfile":
        """Flat rate from t=0 to ``duration``."""
        return RateProfile(((0.0, rate), (float(duration), rate)))

    @staticmethod
    def triangular(start: float, peak_time: float, end: float, peak_rate: float) -> "RateProfile":
        """Ramp from 0 at ``start`` up to ``peak_rate`` at ``peak_time``, back to 0 at ``end``."""
        if not start <= peak_time <= end:
            raise DemandError("triangular profile requires start <= peak <= end")
        return RateProfile(
            ((float(start), 0.0), (float(peak_time), peak_rate), (float(end), 0.0))
        )


@dataclass
class Flow:
    """One OD flow: vehicles from ``origin_link`` to ``destination_link``."""

    name: str
    origin_link: str
    destination_link: str
    profile: RateProfile
    _accumulator: float = field(default=0.0, repr=False)

    def expected_vehicles(self) -> float:
        """Integral of the rate profile (total expected emissions)."""
        total = 0.0
        pts = self.profile.points
        for (t0, r0), (t1, r1) in zip(pts[:-1], pts[1:]):
            total += (t1 - t0) * (r0 + r1) / 2.0 / 3600.0
        return total


class DemandGenerator:
    """Turns a set of flows into per-tick vehicle emissions.

    Call :meth:`emit` exactly once per simulation tick; it returns the
    vehicles (with routes resolved) created during that second.
    """

    def __init__(
        self,
        flows: list[Flow],
        router: Router,
        seed: int = 0,
        stochastic: bool = True,
    ) -> None:
        if not flows:
            raise DemandError("demand needs at least one flow")
        names = [flow.name for flow in flows]
        if len(set(names)) != len(names):
            raise DemandError("flow names must be unique")
        self.flows = flows
        self.router = router
        self.stochastic = stochastic
        self._rng = np.random.default_rng(seed)
        self._next_vehicle_id = 0
        # Resolve all routes eagerly so bad ODs fail fast.
        self._routes = {
            flow.name: router.route(flow.origin_link, flow.destination_link)
            for flow in flows
        }
        # Per-flow emission records resolved once: (flow, route, profile
        # span, segment list).  ``emit`` runs every tick; evaluating the
        # piecewise rate from these beats re-slicing ``profile.points``.
        self._flow_entries = []
        for flow in flows:
            pts = flow.profile.points
            segments = tuple(
                (t0, t1, r0, r1) for (t0, r0), (t1, r1) in zip(pts[:-1], pts[1:])
            )
            self._flow_entries.append(
                (flow, self._routes[flow.name], pts[0][0], pts[-1][0], pts[-1][1], segments)
            )

    @property
    def end_time(self) -> float:
        """Last second at which any flow emits."""
        return max(flow.profile.end_time for flow in self.flows)

    def route_for(self, flow_name: str) -> list[str]:
        return list(self._routes[flow_name])

    def emit(self, t: int) -> list[tuple[int, list[str]]]:
        """Vehicles created at tick ``t`` as ``(vehicle_id, route)`` pairs.

        The rate evaluation mirrors :meth:`RateProfile.rate_at` exactly
        (same arithmetic, same draw-skipping for zero rates) over the
        segments precomputed at construction.
        """
        created: list[tuple[int, list[str]]] = []
        tf = float(t)
        stochastic = self.stochastic
        for flow, route, t_first, t_last, r_last, segments in self._flow_entries:
            if tf < t_first or tf > t_last:
                continue
            for t0, t1, r0, r1 in segments:
                if t0 <= tf <= t1:
                    if t1 == t0:
                        rate = r1
                    else:
                        rate = r0 + ((tf - t0) / (t1 - t0)) * (r1 - r0)
                    break
            else:
                rate = r_last if tf == t_last else 0.0
            per_second = rate / 3600.0
            if per_second <= 0.0:
                continue
            if stochastic:
                count = int(self._rng.poisson(per_second))
            else:
                flow._accumulator += per_second
                count = int(flow._accumulator)
                flow._accumulator -= count
            for _ in range(count):
                created.append((self._next_vehicle_id, list(route)))
                self._next_vehicle_id += 1
        return created

    def reset(self, seed: int | None = None) -> None:
        """Reset emission state for a fresh episode."""
        if seed is not None:
            self._rng = np.random.default_rng(seed)
        self._next_vehicle_id = 0
        for flow in self.flows:
            flow._accumulator = 0.0
