"""Lockstep coordination of sharded simulations.

:class:`ShardedSimulation` owns the partition, builds one
:class:`~repro.sim.sharded.shard.ShardRuntime` per shard and advances
all shards in lockstep.  Each tick:

1. every shard applies its inbound boundary payloads (handoffs relayed
   after the previous tick, remote occupancy, neighbour messages),
   requests signal phases from its local controller and steps once;
2. the coordinator gathers each shard's outbound payloads and routes
   them along the directed shard-graph edges, applying boundary faults;
3. the routed payloads become next tick's inbounds — a vehicle crossing
   a cut therefore spends exactly one tick "on the wire" before joining
   the downstream insertion queue, and remote occupancy/messages are one
   tick stale.  With one shard the exchange is empty and the run is
   bit-exact with the monolithic engine.

Two interchangeable drivers execute the shards: an in-process serial
driver (the equivalence-test oracle) and a persistent
:class:`~repro.perf.workers.WorkerPool` driver (one forked worker per
shard, one parallel pipe round trip per tick).  Both run the identical
``ShardRuntime`` code, which is what the serial-vs-workers bit-exactness
tests pin down.

**Boundary faults** (coordinator-side, seeded independently of every
engine RNG so fault injection cannot perturb demand):

* ``FaultConfig.shard_link_loss`` — per (directed edge, tick) Bernoulli;
  on loss the edge's handoff batch is *held* upstream and retried next
  tick (vehicles are never destroyed — conservation holds) and its
  occupancy/message payloads are dropped;
* ``FaultConfig.message_delay`` — drops only the occupancy/message
  payloads, so receivers keep reusing their last-delivered values with
  growing staleness (the sharded analogue of PairUpLight's
  staleness-decay message reuse).
"""

from __future__ import annotations

import time as _time

import numpy as np

from repro.errors import SimulationError
from repro.faults.config import FaultConfig
from repro.perf.workers import WorkerPool
from repro.sim.demand import DemandGenerator, Flow
from repro.sim.network import RoadNetwork
from repro.sim.routing import Router
from repro.sim.sharded.partition import Partition, partition_network
from repro.sim.sharded.shard import ShardRuntime, ShardSpec, build_shard_specs
from repro.sim.signal import FixedTimeProgram, PhasePlan

#: Seed-stream tag decorrelating the boundary-fault RNG from engine seeds.
_FAULT_STREAM = 0x5AAD

#: Default cadence (ticks) of aggregated ``shard_handoff`` telemetry.
DEFAULT_HANDOFF_REPORT_EVERY = 100


class _SerialDriver:
    """All shard runtimes in-process — the protocol oracle."""

    def __init__(self, factories) -> None:
        self.runtimes = [factory() for factory in factories]
        self.pids = [None] * len(self.runtimes)

    def tick_all(self, inbounds):
        return [
            runtime.tick(inbound)
            for runtime, inbound in zip(self.runtimes, inbounds)
        ]

    def call_all(self, method, args_list=None):
        if args_list is None:
            return [getattr(runtime, method)() for runtime in self.runtimes]
        return [
            getattr(runtime, method)(*args)
            for runtime, args in zip(self.runtimes, args_list)
        ]

    def close(self) -> None:
        return None


class _PoolDriver:
    """One persistent forked worker per shard."""

    def __init__(self, factories, timeout_s) -> None:
        self.pool = WorkerPool(factories, timeout_s=timeout_s)
        self.pids = list(self.pool.pids)

    def tick_all(self, inbounds):
        return self.pool.call_all("tick", [(inbound,) for inbound in inbounds])

    def call_all(self, method, args_list=None):
        return self.pool.call_all(method, args_list)

    def close(self) -> None:
        self.pool.close()


class ShardedSimulation:
    """A spatially sharded simulation advancing K shards in lockstep.

    Parameters
    ----------
    network, phase_plans:
        The full network and its signal plans (as for ``Simulation``).
    flows:
        Global demand; each flow is assigned to the shard owning its
        origin link, and every shard runs its own seeded
        :class:`~repro.sim.demand.DemandGenerator` over its subset.
    num_shards:
        Partition arity (``1`` reproduces the monolithic engine
        bit-exactly).
    workers:
        ``True`` runs each shard in a persistent forked worker process;
        ``False`` runs all shards serially in-process (same protocol,
        same results).
    controller:
        ``"fixed_time"`` (requires ``programs``; defaults to cycling
        every phase for ``green_time`` seconds) or ``"max_pressure"``.
    faults:
        Optional :class:`~repro.faults.config.FaultConfig`; only
        ``shard_link_loss`` and ``message_delay`` apply here.
    telemetry:
        Optional :class:`repro.obs.Telemetry`; emits ``shard_spawn``,
        aggregated ``shard_handoff`` and per-occurrence
        ``shard_link_loss`` events.  Telemetry never touches any RNG.
    """

    def __init__(
        self,
        network: RoadNetwork,
        phase_plans: dict[str, PhasePlan],
        flows: list[Flow],
        num_shards: int,
        *,
        seed: int = 0,
        stochastic: bool = True,
        workers: bool = False,
        worker_timeout_s: float | None = None,
        controller: str = "fixed_time",
        programs: dict[str, FixedTimeProgram] | None = None,
        green_time: int = 15,
        delta_t: int = 5,
        faults: FaultConfig | None = None,
        telemetry=None,
        handoff_report_every: int = DEFAULT_HANDOFF_REPORT_EVERY,
        engine_kwargs: dict | None = None,
    ) -> None:
        self.partition: Partition = partition_network(network, num_shards)
        self.specs: list[ShardSpec] = build_shard_specs(
            network, phase_plans, self.partition
        )
        self.num_shards = num_shards
        self.seed = seed
        self.telemetry = telemetry
        self.handoff_report_every = max(1, int(handoff_report_every))
        self.time = 0

        if controller == "fixed_time" and programs is None:
            programs = {
                node_id: FixedTimeProgram(
                    [(i, green_time) for i in range(plan.num_phases)]
                )
                for node_id, plan in phase_plans.items()
            }

        # Demand split: each flow belongs to the shard owning its origin
        # link, order-preserving.  One shared router primes the route
        # cache once in the parent; forked workers inherit it for free.
        link_owner = self.partition.link_owner
        router = Router(network)
        for flow in flows:
            if flow.origin_link not in link_owner:
                raise SimulationError(
                    f"flow {flow.name!r} origin {flow.origin_link!r} not in network"
                )
            router.route(flow.origin_link, flow.destination_link)
        flows_by_shard: list[list[Flow]] = [[] for _ in range(num_shards)]
        for flow in flows:
            flows_by_shard[link_owner[flow.origin_link]].append(flow)

        def make_factory(spec: ShardSpec, shard_flows: list[Flow]):
            def factory() -> ShardRuntime:
                demand = None
                if shard_flows:
                    demand = DemandGenerator(
                        shard_flows, router, seed=seed, stochastic=stochastic
                    )
                return ShardRuntime(
                    spec,
                    demand,
                    controller=controller,
                    programs=programs,
                    delta_t=delta_t,
                    engine_kwargs=engine_kwargs,
                )

            return factory

        factories = [
            make_factory(spec, shard_flows)
            for spec, shard_flows in zip(self.specs, flows_by_shard)
        ]
        if workers and num_shards > 1:
            self._driver = _PoolDriver(factories, worker_timeout_s)
        else:
            self._driver = _SerialDriver(factories)

        # Directed shard-graph edges, from the cut links (deterministic
        # order).  Each edge is one boundary channel: handoffs flow along
        # it; the reverse edge carries the cut links' occupancy upstream.
        assignment = self.partition.assignment
        edges: list[tuple[int, int]] = []
        seen = set()
        for link_id in self.partition.cut_links:
            link = network.links[link_id]
            edge = (assignment[link.from_node], assignment[link.to_node])
            if edge not in seen:
                seen.add(edge)
                edges.append(edge)
        self.edges = edges
        #: channels considered for faults: every directed pair that can
        #: carry any payload (handoffs one way, occupancy/messages both).
        channels = set(edges) | {(b, a) for a, b in edges}
        self._channels = sorted(channels)
        #: entry link id → shard holding its exit stub (the upstream side).
        self._stub_owner: dict[str, int] = {}
        for spec in self.specs:
            for link_id in spec.exit_stubs:
                self._stub_owner[link_id] = spec.index
        self._adjacency: dict[int, list[int]] = {}
        for a, b in self._channels:
            self._adjacency.setdefault(a, []).append(b)

        self._faults = faults
        self._fault_rng = (
            np.random.default_rng([seed, _FAULT_STREAM])
            if faults is not None
            and (faults.shard_link_loss > 0 or faults.message_delay > 0)
            else None
        )
        #: handoff batches held back by link-loss faults, per edge.
        self._held: dict[tuple[int, int], list] = {edge: [] for edge in edges}
        #: handoff batches delivered by the last exchange, sitting in the
        #: inbounds until the next tick consumes them — still "on the
        #: wire" for conservation/trajectory accounting.
        self._wire: dict[tuple[int, int], list] = {edge: [] for edge in edges}
        #: occupancy changes not yet delivered, per channel.  Runtimes
        #: report deltas (changed entry links only); a faulted exchange
        #: keeps the delta pending so the next successful delivery
        #: carries the latest value of everything changed since.
        self._occ_pending: dict[tuple[int, int], dict[str, int]] = {}
        self.handoffs_total = 0
        self.link_losses = 0
        self.message_losses = 0
        self._handoff_window = 0
        self._handoff_window_edges: dict[str, int] = {}
        self._inbounds = [dict() for _ in range(num_shards)]
        #: full-network link ids, for validating capacity/incident hooks.
        self._all_links = frozenset(network.links)
        #: coordinator's view of non-default capacity factors.
        self.capacity_factors: dict[str, float] = {}
        self._incidents = None

        if telemetry is not None:
            for spec, pid in zip(self.specs, self._driver.pids):
                telemetry.shard_spawn(
                    shard=spec.index,
                    nodes=len(spec.network.nodes),
                    links=len(spec.network.links),
                    owned_links=len(spec.owned_links),
                    cut_out=len(spec.exit_stubs),
                    cut_in=len(spec.entry_links),
                    pid=pid,
                )

    # ------------------------------------------------------------------
    # Incident / capacity control surface (mirrors ``Simulation``'s)
    # ------------------------------------------------------------------
    def set_capacity_factor(self, link_id: str, factor: float) -> None:
        """Scale a link's effective storage across the whole city.

        Broadcast to every shard: the owning shard throttles entry onto
        the link, and (for cut links) the upstream shard's exit-stub
        copy blocks discharge against the same reduced storage.  Shards
        whose subnetwork lacks the link skip the write.  Validation
        matches :meth:`repro.sim.engine.Simulation.set_capacity_factor`.
        """
        if link_id not in self._all_links:
            raise SimulationError(f"unknown link {link_id!r}")
        if not 0.0 <= factor <= 1.0:
            raise SimulationError(
                f"capacity factor must lie in [0, 1], got {factor}"
            )
        if factor >= 1.0:
            self.capacity_factors.pop(link_id, None)
        else:
            self.capacity_factors[link_id] = factor
        self._driver.call_all(
            "set_capacity_factor", [(link_id, factor)] * self.num_shards
        )

    @property
    def incidents(self):
        """Optional :class:`~repro.faults.incidents.IncidentSchedule`.

        Setting it broadcasts the schedule to every shard engine, which
        reconciles it at the start of each lockstep tick — closure
        scenarios therefore run at city scale with no extra coordinator
        round trips.
        """
        return self._incidents

    @incidents.setter
    def incidents(self, schedule) -> None:
        self._incidents = schedule
        self._driver.call_all(
            "set_incidents", [(schedule,)] * self.num_shards
        )

    # ------------------------------------------------------------------
    def run(self, ticks: int) -> None:
        """Advance all shards ``ticks`` lockstep ticks."""
        for _ in range(ticks):
            outbounds = self._driver.tick_all(self._inbounds)
            self._inbounds = self._exchange(outbounds)
            self.time += 1
        if self.telemetry is not None:
            self._flush_handoff_report()

    def _draw_losses(self) -> tuple[set, set]:
        """Per-channel Bernoulli draws for this tick's exchange.

        Returns ``(lost_channels, delayed_channels)``: link loss drops
        everything on the channel (handoffs held), message delay drops
        only occupancy/messages.  Draw order is the sorted channel list,
        so serial and worker drivers consume identical streams.
        """
        lost: set = set()
        delayed: set = set()
        rng = self._fault_rng
        if rng is None:
            return lost, delayed
        faults = self._faults
        for channel in self._channels:
            if faults.shard_link_loss > 0 and rng.random() < faults.shard_link_loss:
                lost.add(channel)
            if faults.message_delay > 0 and rng.random() < faults.message_delay:
                delayed.add(channel)
        return lost, delayed

    def _exchange(self, outbounds) -> list[dict]:
        lost, delayed = self._draw_losses()
        # The previous exchange's deliveries were just consumed by
        # tick_all; only this exchange's deliveries remain on the wire.
        self._wire = {edge: [] for edge in self.edges}
        inbounds: list[dict] = [
            {"handoffs": [], "occupancy": {}, "messages": {}}
            for _ in range(self.num_shards)
        ]
        telemetry = self.telemetry

        # Vehicle handoffs: held batches (from earlier lost ticks) are
        # retried first so arrival order is preserved.
        for (src, dst), held in self._held.items():
            fresh = outbounds[src]["handoffs"].get(dst, [])
            pending = held + list(fresh)
            if not pending:
                continue
            if (src, dst) in lost:
                self._held[(src, dst)] = pending
                self.link_losses += 1
                if telemetry is not None:
                    telemetry.shard_link_loss(
                        tick=self.time,
                        src=src,
                        dst=dst,
                        kind="handoff",
                        held=len(pending),
                    )
                continue
            self._held[(src, dst)] = []
            self._wire[(src, dst)] = pending
            inbounds[dst]["handoffs"].extend(pending)
            count = len(pending)
            self.handoffs_total += count
            self._handoff_window += count
            key = f"{src}->{dst}"
            self._handoff_window_edges[key] = (
                self._handoff_window_edges.get(key, 0) + count
            )

        # Occupancy (entry-link owner → stub owner) and neighbour
        # messages (both directions): dropped payloads simply don't
        # arrive, so the receiver's last-delivered values go stale.
        dropped_channels: set = set()
        occ_pending = self._occ_pending
        for src, outbound in enumerate(outbounds):
            occupancy = outbound.get("occupancy") or {}
            for link_id, value in occupancy.items():
                # src owns the entry link; the stub lives upstream.
                dst = self._stub_owner.get(link_id)
                if dst is None or dst == src:
                    continue
                occ_pending.setdefault((src, dst), {})[link_id] = value
        for channel, pending in occ_pending.items():
            if not pending:
                continue
            if channel in lost or channel in delayed:
                dropped_channels.add(channel)
                continue
            inbounds[channel[1]]["occupancy"].update(pending)
            pending.clear()
        for src, outbound in enumerate(outbounds):
            messages = outbound.get("messages") or {}
            if messages:
                for dst in self._adjacency.get(src, ()):
                    channel = (src, dst)
                    if channel in lost or channel in delayed:
                        dropped_channels.add(channel)
                        continue
                    inbounds[dst]["messages"].update(messages)
        for channel in sorted(dropped_channels):
            self._count_message_loss(channel, telemetry)

        if (
            telemetry is not None
            and self.time > 0
            and self.time % self.handoff_report_every == 0
        ):
            self._flush_handoff_report()
        return inbounds

    def _count_message_loss(self, channel, telemetry) -> None:
        self.message_losses += 1
        if telemetry is not None:
            telemetry.shard_link_loss(
                tick=self.time,
                src=channel[0],
                dst=channel[1],
                kind="message",
                held=0,
            )

    def _flush_handoff_report(self) -> None:
        if self._handoff_window == 0:
            return
        self.telemetry.shard_handoff(
            tick=self.time,
            total=self._handoff_window,
            edges=dict(self._handoff_window_edges),
        )
        self._handoff_window = 0
        self._handoff_window_edges = {}

    # ------------------------------------------------------------------
    def in_flight(self) -> int:
        """Vehicles on the wire: held on faulted channels, plus batches
        delivered by the last exchange and not yet consumed by a tick."""
        return sum(len(batch) for batch in self._held.values()) + sum(
            len(batch) for batch in self._wire.values()
        )

    def summary(self) -> dict:
        """Aggregate episode summary across shards (exact sums)."""
        per_shard = self._driver.call_all("summary")
        total = {
            "ticks": self.time,
            "num_shards": self.num_shards,
            "edge_cut": self.partition.edge_cut,
            "shard_sizes": self.partition.shard_sizes(),
            "created": sum(s["created"] for s in per_shard),
            "finished": sum(s["finished"] for s in per_shard),
            "in_network": sum(s["in_network"] for s in per_shard),
            "pending": sum(s["pending"] for s in per_shard),
            "in_flight": self.in_flight(),
            "handoffs": self.handoffs_total,
            "link_losses": self.link_losses,
            "message_losses": self.message_losses,
            "teleports": sum(s["teleports"] for s in per_shard),
            "travel_time_sum": sum(s["travel_time_sum"] for s in per_shard),
            "wait_sum": sum(s["wait_sum"] for s in per_shard),
            "shards": per_shard,
        }
        finished = total["finished"]
        total["avg_travel_time"] = (
            total["travel_time_sum"] / finished if finished else 0.0
        )
        total["avg_wait"] = total["wait_sum"] / finished if finished else 0.0
        return total

    def trajectories(self) -> list[tuple]:
        """All vehicle trajectory tuples, merged across shards and held
        handoff batches, sorted by vehicle id."""
        rows: list[tuple] = []
        for shard_rows in self._driver.call_all("trajectories"):
            rows.extend(tuple(row) for row in shard_rows)
        for channel_map in (self._held, self._wire):
            for (src, dst), batch in sorted(channel_map.items()):
                for record in batch:
                    rows.append(
                        (
                            record.vehicle_id,
                            record.created,
                            None,
                            None,
                            f"in_flight:{src}->{dst}",
                            record.wait_base,
                            record.links_travelled,
                            tuple(record.route),
                            -1,
                        )
                    )
        rows.sort(key=lambda row: row[0])
        return rows

    def check_conservation(self) -> None:
        """Raise unless every created vehicle is accounted for."""
        summary = self.summary()
        accounted = (
            summary["finished"]
            + summary["in_network"]
            + summary["pending"]
            + summary["in_flight"]
        )
        if accounted != summary["created"]:
            raise SimulationError(
                f"vehicle conservation violated: created {summary['created']} "
                f"!= finished {summary['finished']} + in_network "
                f"{summary['in_network']} + pending {summary['pending']} + "
                f"in_flight {summary['in_flight']}"
            )

    def close(self) -> None:
        self._driver.close()

    def __enter__(self) -> "ShardedSimulation":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def run_sharded(
    network: RoadNetwork,
    phase_plans: dict[str, PhasePlan],
    flows: list[Flow],
    num_shards: int,
    ticks: int,
    **kwargs,
) -> dict:
    """Convenience wrapper: build, run, summarize, close.

    Adds wall-clock throughput (``ticks_per_second``) to the summary —
    the number every scaling curve in ``bench_sharded`` is made of.
    """
    with ShardedSimulation(network, phase_plans, flows, num_shards, **kwargs) as sim:
        start = _time.perf_counter()
        sim.run(ticks)
        elapsed = _time.perf_counter() - start
        sim.check_conservation()
        summary = sim.summary()
        summary["elapsed_s"] = elapsed
        summary["ticks_per_second"] = ticks / elapsed if elapsed > 0 else 0.0
        return summary
