"""Spatial partitioning of a road network into contiguous shards.

The partitioner cuts the node set of a :class:`~repro.sim.network.RoadNetwork`
into ``K`` contiguous regions by greedy breadth-first growth over the
undirected link graph: each shard grows a BFS ball from the first
still-unassigned node (in network insertion order) until it reaches its
size target, then the next shard starts.  On grid networks (nodes added
row-major) this yields contiguous bands with cut sizes close to a
METIS-style min-cut, at a fraction of the complexity, and it is fully
deterministic — the same network and shard count always produce the same
partition, which the sharded-vs-serial equivalence tests rely on.

A directed link is *owned* by the shard of its ``to_node`` — the shard
that holds the signal controlling the link's exit, its lane queues and
its storage.  A link whose endpoints land in different shards is a *cut
link*: its upstream shard keeps only a stub for routing/signal purposes
while the owning (downstream) shard simulates it fully (see
``repro.sim.sharded.shard``).
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field

from repro.errors import SimulationError
from repro.sim.network import RoadNetwork


@dataclass(frozen=True)
class Partition:
    """A K-way contiguous node partition of one network."""

    num_shards: int
    #: node id → shard index, for every node in the network.
    assignment: dict[str, int]
    #: per-shard node ids, in network insertion order.
    shards: tuple[tuple[str, ...], ...]
    #: links whose endpoints lie in different shards, in network order.
    cut_links: tuple[str, ...]
    #: link id → owning shard (shard of the link's ``to_node``).
    link_owner: dict[str, int] = field(repr=False)

    @property
    def edge_cut(self) -> int:
        return len(self.cut_links)

    def shard_sizes(self) -> list[int]:
        return [len(shard) for shard in self.shards]


def _components(
    members: list[str], adjacency: dict[str, list[str]]
) -> list[list[str]]:
    """Connected components of ``members`` in the undirected graph,
    deterministic (seeded and grown in ``members`` order)."""
    member_set = set(members)
    seen: set[str] = set()
    components: list[list[str]] = []
    for start in members:
        if start in seen:
            continue
        component = [start]
        seen.add(start)
        frontier = deque([start])
        while frontier:
            node_id = frontier.popleft()
            for neighbour in adjacency[node_id]:
                if neighbour in member_set and neighbour not in seen:
                    seen.add(neighbour)
                    component.append(neighbour)
                    frontier.append(neighbour)
        components.append(component)
    return components


def _repair_stray_components(
    nodes: list[str],
    adjacency: dict[str, list[str]],
    assignment: dict[str, int],
    num_shards: int,
) -> None:
    """Reassign stray components so every shard is contiguous.

    Greedy BFS growth can strand small pockets — typically degree-1
    fringe terminals whose only neighbour was absorbed by an earlier
    shard.  Each shard keeps its largest component; every other
    component moves to the adjacent shard it touches most (smallest
    index on ties).  Moving a connected component into an adjacent shard
    keeps the receiver connected and never splits the donor further, so
    the total component count strictly drops and the loop terminates.
    Components with no assigned neighbours (a disconnected network) stay
    put — contiguity is per graph component there.
    """
    changed = True
    while changed:
        changed = False
        for shard_index in range(num_shards):
            members = [n for n in nodes if assignment[n] == shard_index]
            components = _components(members, adjacency)
            if len(components) <= 1:
                continue
            components.sort(key=len, reverse=True)
            for stray in components[1:]:
                touches: dict[int, int] = {}
                for node_id in stray:
                    for neighbour in adjacency[node_id]:
                        other = assignment[neighbour]
                        if other != shard_index:
                            touches[other] = touches.get(other, 0) + 1
                if not touches:
                    continue
                best = max(sorted(touches), key=lambda s: touches[s])
                for node_id in stray:
                    assignment[node_id] = best
                changed = True


def partition_network(network: RoadNetwork, num_shards: int) -> Partition:
    """Greedy-BFS K-way partition of ``network``'s nodes.

    Shard size targets are rebalanced as shards are carved off
    (``ceil(remaining_nodes / remaining_shards)``), so sizes stay close
    to even; a repair pass then re-homes any stranded pockets (fringe
    terminals boxed in by earlier shards) so every shard is one
    connected region.  Disconnected networks are handled by restarting
    the BFS from the next unassigned node, preserving per-component
    contiguity.
    """
    nodes = list(network.nodes)
    if num_shards < 1:
        raise SimulationError(f"num_shards must be >= 1, got {num_shards}")
    if num_shards > len(nodes):
        raise SimulationError(
            f"cannot cut {len(nodes)} nodes into {num_shards} shards"
        )

    # Undirected node adjacency in link insertion order (deterministic).
    adjacency: dict[str, list[str]] = {node_id: [] for node_id in nodes}
    for link in network.links.values():
        adjacency[link.from_node].append(link.to_node)
        adjacency[link.to_node].append(link.from_node)

    assignment: dict[str, int] = {}
    shards: list[list[str]] = []
    cursor = 0  # scan position over `nodes` for the next BFS seed
    remaining = len(nodes)
    for shard_index in range(num_shards):
        target = math.ceil(remaining / (num_shards - shard_index))
        members: list[str] = []
        frontier: deque[str] = deque()
        while len(members) < target:
            if not frontier:
                # Fresh BFS seed: first unassigned node in network order.
                while nodes[cursor] in assignment:
                    cursor += 1
                frontier.append(nodes[cursor])
            node_id = frontier.popleft()
            if node_id in assignment:
                continue
            assignment[node_id] = shard_index
            members.append(node_id)
            for neighbour in adjacency[node_id]:
                if neighbour not in assignment:
                    frontier.append(neighbour)
        shards.append(members)
        remaining -= len(members)

    _repair_stray_components(nodes, adjacency, assignment, num_shards)
    shards = [
        [node_id for node_id in nodes if assignment[node_id] == shard_index]
        for shard_index in range(num_shards)
    ]

    cut_links = tuple(
        link_id
        for link_id, link in network.links.items()
        if assignment[link.from_node] != assignment[link.to_node]
    )
    link_owner = {
        link_id: assignment[link.to_node] for link_id, link in network.links.items()
    }
    return Partition(
        num_shards=num_shards,
        assignment=assignment,
        shards=tuple(tuple(members) for members in shards),
        cut_links=cut_links,
        link_owner=link_owner,
    )
