"""Per-shard subnetwork construction, boundary handoffs, shard engine.

One shard simulates the links it *owns* (links whose ``to_node`` falls in
the shard — signal, lane queues, storage and discharge are all local)
plus a thin halo:

* **exit stubs** — cut links leaving the shard.  The stub carries the
  real geometry so movements, phase plans and lane choice at the
  upstream intersection are untouched, but no vehicle ever occupies it
  here: the moment a vehicle would enter an exit stub,
  :class:`ShardEngine` intercepts the entry and emits a
  :class:`HandoffRecord` instead.  The stub's ``link_occupancy`` entry is
  reserved for the *remote* occupancy relayed from the owning shard each
  tick, which restores cross-cut spillback with one-tick-stale
  information.
* **entry links** — cut links entering the shard.  The shard owns them
  fully and treats them exactly like demand origins: handed-off vehicles
  join the link's insertion queue and re-enter under the normative
  insertion-credit semantics of DESIGN.md §6 (credit accrual, storage
  clamp, drain reset), one tick after leaving the upstream shard.
* **ghost nodes** — the remote endpoints of cut links, copied with their
  coordinates (so turn classification is identical) but never
  signalized.

Routes are *clipped* per shard: a vehicle's local route is the prefix of
owned links plus, when the route leaves the shard, the first exit stub;
the remaining global suffix is kept aside and travels with the handoff.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import NamedTuple, Sequence

from repro.errors import SimulationError
from repro.sim.demand import DemandGenerator
from repro.sim.engine import Simulation
from repro.sim.network import RoadNetwork
from repro.sim.sharded.partition import Partition
from repro.sim.signal import FixedTimeProgram, PhasePlan
from repro.sim.vehicle import Vehicle


class HandoffRecord(NamedTuple):
    """A vehicle crossing a shard cut, serialized upstream at the moment
    it would have entered the cut link."""

    vehicle_id: int
    #: Remaining *global* route, starting at the cut link itself.
    route: tuple[str, ...]
    created: int
    wait_base: int
    links_travelled: int


@dataclass
class ShardSpec:
    """Everything one shard worker needs to build its engine."""

    index: int
    num_shards: int
    network: RoadNetwork
    phase_plans: dict[str, PhasePlan]
    #: links fully simulated by this shard.
    owned_links: frozenset[str]
    #: exit stub link id → destination shard index.
    exit_stubs: dict[str, int]
    #: cut links owned by this shard (handoffs arrive here).
    entry_links: tuple[str, ...]
    #: global link id → owning shard, for route clipping.
    link_owner: dict[str, int] = field(repr=False)
    #: local signalized nodes incident to at least one cut link.
    boundary_nodes: tuple[str, ...] = ()


def clip_route(
    route: Sequence[str], link_owner: dict[str, int], shard_index: int
) -> tuple[list[str], tuple[str, ...] | None]:
    """Split a global route into this shard's local leg and the handoff
    continuation.

    Returns ``(local_route, continuation)``: ``local_route`` is the
    owned prefix plus (when the route leaves the shard) the exit stub;
    ``continuation`` is the full remaining global route starting at that
    stub, or ``None`` when the route ends inside the shard.
    """
    local: list[str] = []
    for position, link_id in enumerate(route):
        local.append(link_id)
        if link_owner[link_id] != shard_index:
            if position == 0:
                raise SimulationError(
                    f"route starts at {link_id!r}, owned by shard "
                    f"{link_owner[link_id]}, not {shard_index}"
                )
            return local, tuple(route[position:])
    return local, None


def build_shard_specs(
    network: RoadNetwork,
    phase_plans: dict[str, PhasePlan],
    partition: Partition,
) -> list[ShardSpec]:
    """Cut one validated network into per-shard subnetworks."""
    assignment = partition.assignment
    link_owner = partition.link_owner
    specs: list[ShardSpec] = []
    for shard_index in range(partition.num_shards):
        members = set(partition.shards[shard_index])
        sub = RoadNetwork()
        # Local nodes keep their signalization; ghost endpoints of cut
        # links are added on demand, never signalized.
        for node_id in partition.shards[shard_index]:
            node = network.nodes[node_id]
            sub.add_node(node_id, node.x, node.y, signalized=node.signalized)

        def ensure_ghost(node_id: str) -> None:
            if node_id not in sub.nodes:
                node = network.nodes[node_id]
                sub.add_node(node_id, node.x, node.y, signalized=False)

        owned: list[str] = []
        exit_stubs: dict[str, int] = {}
        entry_links: list[str] = []
        for link_id, link in network.links.items():
            to_local = link.to_node in members
            from_local = link.from_node in members
            if not to_local and not from_local:
                continue
            if to_local and not from_local:
                entry_links.append(link_id)
            if from_local and not to_local:
                exit_stubs[link_id] = assignment[link.to_node]
            ensure_ghost(link.from_node)
            ensure_ghost(link.to_node)
            sub.add_link(
                link_id,
                link.from_node,
                link.to_node,
                length=link.length,
                num_lanes=link.num_lanes,
                speed_limit=link.speed_limit,
                lane_turns=[lane.allowed_turns for lane in link.lanes],
            )
            if to_local:
                owned.append(link_id)
        # Movements at local nodes: both endpoint links are present by
        # construction (in-links of a local node are owned; out-links are
        # owned or exit stubs).  Turns are copied, not re-classified.
        for movement in network.movements.values():
            node_id = network.links[movement.in_link].to_node
            if node_id in members:
                sub.add_movement(movement.in_link, movement.out_link, movement.turn)
        sub.validate()

        local_plans = {
            node_id: plan
            for node_id, plan in phase_plans.items()
            if node_id in members
        }
        cut_set = set(partition.cut_links)
        boundary: list[str] = []
        for node_id in partition.shards[shard_index]:
            if node_id not in local_plans:
                continue
            node = network.nodes[node_id]
            if any(
                link_id in cut_set for link_id in (*node.incoming, *node.outgoing)
            ):
                boundary.append(node_id)
        specs.append(
            ShardSpec(
                index=shard_index,
                num_shards=partition.num_shards,
                network=sub,
                phase_plans=local_plans,
                owned_links=frozenset(owned),
                exit_stubs=exit_stubs,
                entry_links=tuple(entry_links),
                link_owner=link_owner,
                boundary_nodes=tuple(boundary),
            )
        )
    return specs


class ShardEngine(Simulation):
    """A :class:`~repro.sim.engine.Simulation` over one shard's
    subnetwork, with boundary handoffs at the cut links.

    Everything inside the shard — discharge, spillback, permissive
    lefts, insertion credit — is the unmodified engine.  The overrides
    only touch the boundary:

    * entering an exit stub becomes a :class:`HandoffRecord` appended to
      the per-destination outbox (the vehicle leaves this shard);
    * received handoffs join the cut link's insertion queue, exactly
      like freshly generated demand at an origin;
    * demand emissions are route-clipped and vehicle ids are namespaced
      (``local_id * num_shards + shard_index``) so ids stay globally
      unique; with one shard this is the identity, which is what makes
      the single-shard run bit-exact with the monolithic engine.
    """

    def __init__(self, spec: ShardSpec, demand: DemandGenerator | None, **kwargs) -> None:
        super().__init__(spec.network, demand, spec.phase_plans, **kwargs)
        self.spec = spec
        self._exit_stub_dest = spec.exit_stubs
        #: vehicle id → remaining global route from its next cut link on.
        self._continuations: dict[int, tuple[str, ...]] = {}
        self._outbox: dict[int, list[HandoffRecord]] = {
            dest: [] for dest in sorted(set(spec.exit_stubs.values()))
        }
        self.handoffs_out = 0
        self.handoffs_in = 0

    # -- boundary: leaving the shard -----------------------------------
    def _enter_link(self, vehicle: Vehicle, link_id: str) -> None:
        dest = self._exit_stub_dest.get(link_id)
        if dest is None:
            super()._enter_link(vehicle, link_id)
            return
        # The caller (discharge/teleport) has already dequeued the
        # vehicle and released its storage slot; serialize it out
        # instead of entering the stub.  ``links_travelled`` is *not*
        # bumped here — the receiving shard's _enter_link onto the cut
        # link counts it, so the tally matches a monolithic run.
        self._materialize_wait(vehicle)
        continuation = self._continuations.pop(vehicle.vehicle_id)
        if continuation[0] != link_id:
            raise SimulationError(
                f"vehicle {vehicle.vehicle_id} crossed cut at {link_id!r} but "
                f"its continuation starts at {continuation[0]!r}"
            )
        self._outbox[dest].append(
            HandoffRecord(
                vehicle_id=vehicle.vehicle_id,
                route=continuation,
                created=vehicle.created,
                wait_base=vehicle.wait_base,
                links_travelled=vehicle.links_travelled,
            )
        )
        self.handoffs_out += 1
        del self.vehicles[vehicle.vehicle_id]

    def collect_handoffs(self) -> dict[int, list[HandoffRecord]]:
        """Drain the outbox: destination shard → this tick's records."""
        out = {dest: batch for dest, batch in self._outbox.items() if batch}
        for dest in out:
            self._outbox[dest] = []
        return out

    # -- boundary: arriving from another shard -------------------------
    def receive_handoffs(self, records: Sequence[HandoffRecord]) -> None:
        """Queue handed-off vehicles at their cut links' insertion
        queues; they re-enter under normal insertion-credit semantics
        next tick."""
        owner = self.spec.link_owner
        shard_index = self.spec.index
        for record in records:
            local_route, continuation = clip_route(record.route, owner, shard_index)
            vehicle = Vehicle(
                vehicle_id=record.vehicle_id,
                route=local_route,
                created=record.created,
                wait_base=record.wait_base,
                links_travelled=record.links_travelled,
            )
            if continuation is not None:
                self._continuations[record.vehicle_id] = continuation
            self.vehicles[record.vehicle_id] = vehicle
            self.insertion_queues.setdefault(local_route[0], deque()).append(vehicle)
            self.handoffs_in += 1

    # -- boundary: remote occupancy overlay ----------------------------
    def apply_remote_occupancy(self, values: dict[str, int]) -> None:
        """Overlay the owning shard's occupancy onto exit stubs.

        Nothing else ever writes a stub's occupancy (entries are
        intercepted above), so the discharge loops' spillback check
        reads the remote value directly — upstream queues block when the
        downstream side of the cut is full, one tick stale.
        """
        occupancy = self.link_occupancy
        for link_id, value in values.items():
            occupancy[link_id] = value

    def boundary_occupancy(self) -> dict[str, int]:
        """Occupancy of this shard's entry links, published upstream."""
        occupancy = self.link_occupancy
        return {link_id: occupancy[link_id] for link_id in self.spec.entry_links}

    # -- demand ---------------------------------------------------------
    def _generate_demand(self) -> None:
        demand = self.demand
        if demand is None:
            return
        num_shards = self.spec.num_shards
        shard_index = self.spec.index
        owner = self.spec.link_owner
        for local_id, route in demand.emit(self.time):
            vehicle_id = local_id * num_shards + shard_index
            local_route, continuation = clip_route(route, owner, shard_index)
            vehicle = Vehicle(
                vehicle_id=vehicle_id, route=local_route, created=self.time
            )
            if continuation is not None:
                self._continuations[vehicle_id] = continuation
            self.vehicles[vehicle_id] = vehicle
            self.insertion_queues.setdefault(local_route[0], deque()).append(vehicle)
            self._total_created += 1

    # -- introspection --------------------------------------------------
    def vehicles_in_network(self) -> int:
        """Occupancy sum, excluding exit stubs (those hold the *remote*
        overlay, counted by the owning shard)."""
        total = sum(self.link_occupancy.values())
        for link_id in self._exit_stub_dest:
            total -= self.link_occupancy[link_id]
        return total


class ShardRuntime:
    """One shard's engine plus its local controller and tick protocol.

    The runtime is the object a worker process hosts (or the serial
    driver holds in-process): it applies the coordinator's inbound
    boundary payloads, requests signal phases from its controller, steps
    the engine one tick and returns the outbound boundary payloads.

    Controllers run *inside* the shard:

    * ``"fixed_time"`` — per-node :class:`FixedTimeProgram` schedules,
      mirroring :meth:`Simulation.run_fixed_time` exactly (the
      single-shard grounding test leans on this);
    * ``"max_pressure"`` — per-node max-pressure over the shard's own
      queues, with out-link occupancy read through the remote-occupancy
      overlay, so cross-shard congestion steers boundary intersections.
    """

    def __init__(
        self,
        spec: ShardSpec,
        demand: DemandGenerator | None,
        *,
        controller: str = "fixed_time",
        programs: dict[str, FixedTimeProgram] | None = None,
        delta_t: int = 5,
        engine_kwargs: dict | None = None,
    ) -> None:
        self.sim = ShardEngine(spec, demand, **(engine_kwargs or {}))
        self.spec = spec
        self.controller = controller
        self.delta_t = max(1, int(delta_t))
        #: neighbour congestion messages from adjacent shards, kept with
        #: a staleness counter (ticks since last refresh) so consumers
        #: can decay confidence the way PairUpLight's message-reuse path
        #: does when deliveries are dropped.
        self.remote_messages: dict[str, tuple[float, int]] = {}
        #: last boundary occupancy reported to the coordinator; only
        #: changed entries cross the pipe each tick (the coordinator
        #: reconstructs and re-sends after faulted exchanges).
        self._occ_sent: dict[str, int] = {}
        if controller == "fixed_time":
            if programs is None:
                raise SimulationError("fixed_time controller needs programs")
            self._program_entries = [
                (self.sim.signals[node_id], program)
                for node_id, program in programs.items()
                if node_id in self.sim.signals
            ]
        elif controller == "max_pressure":
            self._pressure_entries = self._build_pressure_entries()
            self._held_phase: dict[str, int] = {}
        else:
            raise SimulationError(f"unknown sharded controller {controller!r}")

    # ------------------------------------------------------------------
    def _build_pressure_entries(self):
        """Precompute, per signal and phase, the lane queues feeding each
        green movement and the movement's out-link."""
        network = self.spec.network
        entries = []
        for node_id, plan in self.sim.phase_plans.items():
            phases = []
            for phase in plan.phases:
                terms = []
                for key in phase.green_movements:
                    movement = network.movements.get(key)
                    if movement is None:
                        continue
                    lane_ids = [
                        lane.lane_id for lane in network.lanes_for_movement(movement)
                    ]
                    terms.append((lane_ids, movement.out_link))
                phases.append(terms)
            entries.append((node_id, self.sim.signals[node_id], phases))
        return entries

    def _max_pressure_actions(self) -> None:
        sim = self.sim
        queues = sim.lane_queues
        occupancy = sim.link_occupancy
        for node_id, signal, phases in self._pressure_entries:
            best_index = 0
            best_pressure = None
            for index, terms in enumerate(phases):
                pressure = 0.0
                for lane_ids, out_link in terms:
                    pressure += sum(len(queues[lane_id]) for lane_id in lane_ids)
                    pressure -= occupancy[out_link]
                if best_pressure is None or pressure > best_pressure:
                    best_index, best_pressure = index, pressure
            self._held_phase[node_id] = best_index

    # ------------------------------------------------------------------
    def tick(self, inbound: dict) -> dict:
        """Advance one lockstep tick.

        ``inbound`` carries the coordinator's boundary payloads gathered
        after the *previous* tick: ``handoffs`` (records to enqueue),
        ``occupancy`` (remote stub occupancy) and ``messages``
        (neighbour congestion scores).  Returns the symmetric outbound
        payloads produced by this tick.
        """
        sim = self.sim
        handoffs = inbound.get("handoffs")
        if handoffs:
            sim.receive_handoffs(handoffs)
        occupancy = inbound.get("occupancy")
        if occupancy:
            sim.apply_remote_occupancy(occupancy)
        messages = inbound.get("messages")
        for node_id, (_, staleness) in list(self.remote_messages.items()):
            self.remote_messages[node_id] = (
                self.remote_messages[node_id][0],
                staleness + 1,
            )
        if messages:
            for node_id, score in messages.items():
                self.remote_messages[node_id] = (score, 0)

        t = sim.time
        if self.controller == "fixed_time":
            for signal, program in self._program_entries:
                signal.request_phase(program.phase_at(t))
        else:
            if t % self.delta_t == 0:
                self._max_pressure_actions()
            for node_id, phase_index in self._held_phase.items():
                sim.signals[node_id].request_phase(phase_index)
        sim._step_once()

        occupancy_full = sim.boundary_occupancy()
        sent = self._occ_sent
        occupancy_delta = {
            link_id: value
            for link_id, value in occupancy_full.items()
            if sent.get(link_id, 0) != value
        }
        sent.update(occupancy_delta)
        return {
            "handoffs": sim.collect_handoffs(),
            "occupancy": occupancy_delta,
            "messages": self._emit_messages(),
        }

    def _emit_messages(self) -> dict[str, float]:
        """Congestion scores of boundary intersections (halted vehicles
        on incoming links), relayed to adjacent shards."""
        sim = self.sim
        network = self.spec.network
        scores: dict[str, float] = {}
        for node_id in self.spec.boundary_nodes:
            node = network.nodes[node_id]
            scores[node_id] = float(
                sum(sim.halting_count(link_id) for link_id in node.incoming)
            )
        return scores

    # ------------------------------------------------------------------
    def set_capacity_factor(self, link_id: str, factor: float) -> None:
        """Apply an incident capacity factor to this shard's copy of the
        link, silently skipping links outside the subnetwork.

        The owning shard's factor throttles entry onto the link (queues,
        origin insertion); the upstream shard's exit-stub copy carries
        the same factor so its discharge spillback check blocks against
        the reduced effective storage, exactly as the monolithic engine
        does at that link.
        """
        if link_id in self.sim.network.links:
            self.sim.set_capacity_factor(link_id, factor)

    def set_incidents(self, schedule) -> None:
        """Attach an :class:`~repro.faults.incidents.IncidentSchedule`.

        Each shard engine reconciles the schedule at the start of every
        tick; links absent from the shard's subnetwork are skipped by
        ``IncidentSchedule.apply`` itself, so one city-wide schedule can
        be broadcast to every shard unchanged.
        """
        self.sim.incidents = schedule

    # ------------------------------------------------------------------
    def summary(self) -> dict:
        """Raw per-shard tallies; the coordinator aggregates exactly."""
        sim = self.sim
        finished = sim.finished_vehicles
        return {
            "shard": self.spec.index,
            "time": sim.time,
            "created": sim.total_created,
            "finished": len(finished),
            "in_network": sim.vehicles_in_network(),
            "pending": sim.pending_insertions(),
            "handoffs_out": sim.handoffs_out,
            "handoffs_in": sim.handoffs_in,
            "teleports": sim.teleport_count,
            "travel_time_sum": float(
                sum(v.finished - v.created for v in finished)
            ),
            "wait_sum": float(sum(v.wait_total for v in finished)),
        }

    def trajectories(self) -> list[tuple]:
        """Per-vehicle state tuples, sorted by vehicle id.

        Handed-off vehicles live in exactly one shard at any time, so
        the union across shards covers every vehicle once.  The tuples
        are the bit-exactness currency of the equivalence tests.
        """
        rows = []
        for vehicle in self.vehicles_snapshot():
            rows.append(
                (
                    vehicle.vehicle_id,
                    vehicle.created,
                    vehicle.inserted,
                    vehicle.finished,
                    vehicle.state.value,
                    vehicle.wait_total,
                    vehicle.links_travelled,
                    tuple(vehicle.route),
                    vehicle.route_index,
                )
            )
        rows.sort()
        return rows

    def vehicles_snapshot(self):
        return list(self.sim.vehicles.values())

    def close(self) -> None:  # symmetry with the worker protocol
        return None
