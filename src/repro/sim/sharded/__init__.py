"""City-scale sharded simulation: spatial partitioning across workers.

Public surface:

* :func:`~repro.sim.sharded.partition.partition_network` /
  :class:`~repro.sim.sharded.partition.Partition` — greedy-BFS K-way
  contiguous node partition with cut-link accounting.
* :func:`~repro.sim.sharded.shard.build_shard_specs` /
  :class:`~repro.sim.sharded.shard.ShardSpec` — per-shard subnetworks
  with exit stubs, entry links and ghost nodes.
* :class:`~repro.sim.sharded.shard.ShardEngine` — the unmodified
  mesoscopic engine plus boundary handoffs at cut links.
* :class:`~repro.sim.sharded.coordinator.ShardedSimulation` /
  :func:`~repro.sim.sharded.coordinator.run_sharded` — lockstep
  coordination over serial or persistent-worker drivers, with boundary
  fault injection and telemetry.

See DESIGN.md §8 for the protocol and its semantics at shard cuts.
"""

from repro.sim.sharded.coordinator import ShardedSimulation, run_sharded
from repro.sim.sharded.partition import Partition, partition_network
from repro.sim.sharded.shard import (
    HandoffRecord,
    ShardEngine,
    ShardRuntime,
    ShardSpec,
    build_shard_specs,
    clip_route,
)

__all__ = [
    "HandoffRecord",
    "Partition",
    "ShardEngine",
    "ShardRuntime",
    "ShardSpec",
    "ShardedSimulation",
    "build_shard_specs",
    "clip_route",
    "partition_network",
    "run_sharded",
]
