"""Fault-model configuration.

One :class:`FaultConfig` describes every failure mode the injection layer
can exercise, each with an independent occurrence probability:

* **Detector faults** (applied to :class:`repro.sim.detectors.DetectorSuite`
  readings): per-query *dropout* (the detector returns nothing this
  decision step), per-episode *stuck-at* (the detector freezes at its
  first reading of the episode), and additive Gaussian *noise* on counts.
* **Communication faults** (applied to the PairUpLight message channel):
  per-read *drop*, *corruption* (the payload is replaced by channel
  garbage), and one-step *delay* (the previous delivery is repeated).
* **Controller faults**: per-episode probability that an intersection's
  RL controller dies for the rest of the episode, after which
  :class:`repro.faults.controller.ControllerFaultWrapper` substitutes a
  classical fallback policy.
* **Shard-boundary faults** (applied by the sharded-simulation
  coordinator, :mod:`repro.sim.sharded`): per-tick probability that an
  inter-shard boundary channel loses its exchange — handoff batches are
  held upstream and retried (vehicles are never destroyed), and the
  channel's occupancy/message payloads go stale at the receiver.  The
  existing ``message_delay`` rate additionally drops only the
  occupancy/message payloads, mirroring PairUpLight's staleness-decay
  message reuse.

All probabilities are per-event Bernoulli rates so a single scalar sweep
(:meth:`FaultConfig.uniform`) produces the degradation curves reported by
:mod:`repro.eval.robustness`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import FaultInjectionError

#: Fault families accepted by :meth:`FaultConfig.uniform`.
FAULT_KINDS = ("detector", "message", "controller", "shard")


@dataclass(frozen=True)
class FaultConfig:
    """Occurrence rates of every injectable fault (all default off)."""

    #: Probability a detector query returns nothing this decision step.
    detector_dropout: float = 0.0
    #: Probability (per detector, per episode) of freezing at its first reading.
    detector_stuck: float = 0.0
    #: Standard deviation (vehicles) of additive noise on detector counts.
    detector_noise: float = 0.0
    #: Probability an inter-agent message is lost in transit.
    message_drop: float = 0.0
    #: Probability a delivered message payload is corrupted.
    message_corrupt: float = 0.0
    #: Probability a delivery repeats the previous step's payload instead.
    message_delay: float = 0.0
    #: Probability (per agent, per episode) the RL controller dies.
    controller_failure: float = 0.0
    #: Probability (per directed shard pair, per tick) an inter-shard
    #: boundary exchange is lost (handoffs held upstream, messages stale).
    shard_link_loss: float = 0.0

    def __post_init__(self) -> None:
        for name in (
            "detector_dropout",
            "detector_stuck",
            "message_drop",
            "message_corrupt",
            "message_delay",
            "controller_failure",
            "shard_link_loss",
        ):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise FaultInjectionError(f"{name} must lie in [0, 1], got {rate}")
        if self.detector_noise < 0:
            raise FaultInjectionError("detector_noise must be non-negative")

    # ------------------------------------------------------------------
    @property
    def any_detector_faults(self) -> bool:
        return (
            self.detector_dropout > 0
            or self.detector_stuck > 0
            or self.detector_noise > 0
        )

    @property
    def any_message_faults(self) -> bool:
        return (
            self.message_drop > 0
            or self.message_corrupt > 0
            or self.message_delay > 0
        )

    @property
    def any_controller_faults(self) -> bool:
        return self.controller_failure > 0

    @property
    def any_shard_faults(self) -> bool:
        return self.shard_link_loss > 0

    @property
    def active(self) -> bool:
        return (
            self.any_detector_faults
            or self.any_message_faults
            or self.any_controller_faults
            or self.any_shard_faults
        )

    # ------------------------------------------------------------------
    @classmethod
    def uniform(
        cls, rate: float, kinds: tuple[str, ...] = ("detector", "message")
    ) -> "FaultConfig":
        """One fault rate applied across the chosen fault families.

        ``"detector"`` sets the dropout rate, ``"message"`` the drop
        rate, ``"controller"`` the per-episode failure rate and
        ``"shard"`` the inter-shard link-loss rate — the sweep axes of
        the robustness evaluations.
        """
        unknown = set(kinds) - set(FAULT_KINDS)
        if unknown:
            raise FaultInjectionError(
                f"unknown fault kinds {sorted(unknown)}; choose from {FAULT_KINDS}"
            )
        config = cls()
        if "detector" in kinds:
            config = replace(config, detector_dropout=rate)
        if "message" in kinds:
            config = replace(config, message_drop=rate)
        if "controller" in kinds:
            config = replace(config, controller_failure=rate)
        if "shard" in kinds:
            config = replace(config, shard_link_loss=rate)
        return config
