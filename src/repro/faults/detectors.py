"""Fault-injecting detector suite with graceful sensing degradation.

Wraps :class:`repro.sim.detectors.DetectorSuite` so every reading that
feeds the Eq. 5 observation — queue counts, approaching/downstream
counts and head waits — passes through the fault model first:

* **stuck-at**: the detector repeats its first reading of the episode,
* **dropout**: the query returns nothing this step,
* **noise**: additive Gaussian noise on the count.

With ``degrade=True`` (the default) a dropped reading is *imputed from
the last known good value* and noisy counts are clamped to valid
non-negative integers, so observations stay well-formed and downstream
pressure arithmetic never sees garbage.  With ``degrade=False`` — the
no-fallback ablation — dropout reads as zero (a blind sensor) and noise
is passed through raw, which is exactly the failure the robustness sweep
quantifies.
"""

from __future__ import annotations

from repro.faults.schedule import FaultSchedule
from repro.sim.detectors import DEFAULT_COVERAGE_M, DetectorSuite
from repro.sim.engine import Simulation


class FaultyDetectorSuite(DetectorSuite):
    """A :class:`DetectorSuite` whose readings can fail."""

    def __init__(
        self,
        sim: Simulation,
        schedule: FaultSchedule,
        coverage: float = DEFAULT_COVERAGE_M,
        degrade: bool = True,
    ) -> None:
        super().__init__(sim, coverage)
        # Every read consumes fault-schedule RNG, so readings are not
        # pure functions of simulation state — memoizing them would
        # change the random stream.  Disable the per-tick cache.
        self._cache_enabled = False
        self.schedule = schedule
        self.degrade = degrade
        self._last_good: dict[str, float] = {}
        self._dropped_reads = 0
        self._total_reads = 0

    # ------------------------------------------------------------------
    def _reading(self, key: str, true_value: float) -> float:
        """Route one raw count through the fault model."""
        config = self.schedule.config
        sink = self.schedule.event_sink
        self._total_reads += 1
        if config.detector_stuck and self.schedule.detector_stuck(key):
            if sink is not None:
                self.schedule.emit_activation(
                    "detector_stuck", key, tick=self.sim.time, scope="episode"
                )
            return self.schedule.frozen_value(key, float(true_value))
        if config.detector_dropout and self.schedule.detector_dropped(key):
            self._dropped_reads += 1
            if sink is not None:
                self.schedule.emit_activation(
                    "detector_dropout", key, tick=self.sim.time
                )
            if self.degrade:
                # Impute from the last healthy reading (0 before any).
                return self._last_good.get(key, 0.0)
            return 0.0
        value = float(true_value)
        if config.detector_noise:
            value += self.schedule.detector_noise()
            if sink is not None:
                self.schedule.emit_activation(
                    "detector_noise", key, tick=self.sim.time
                )
            if self.degrade:
                value = max(0.0, round(value))
        self._last_good[key] = value
        return value

    # ------------------------------------------------------------------
    # Faulted overrides of every raw reading entry point.  Derived
    # quantities (pressures, congestion scores) inherit the faults
    # because they are computed from these.
    # ------------------------------------------------------------------
    def observed_queue(self, lane_id: str) -> float:  # type: ignore[override]
        return self._reading(f"queue:{lane_id}", super().observed_queue(lane_id))

    def observed_approaching(self, link_id: str) -> float:  # type: ignore[override]
        return self._reading(
            f"approach:{link_id}", super().observed_approaching(link_id)
        )

    def observed_downstream(self, link_id: str) -> float:  # type: ignore[override]
        return self._reading(
            f"downstream:{link_id}", super().observed_downstream(link_id)
        )

    def head_wait(self, link_id: str) -> float:  # type: ignore[override]
        return self._reading(f"wait:{link_id}", super().head_wait(link_id))

    # ------------------------------------------------------------------
    @property
    def dropout_fraction(self) -> float:
        """Observed fraction of dropped reads (diagnostics)."""
        if self._total_reads == 0:
            return 0.0
        return self._dropped_reads / self._total_reads
