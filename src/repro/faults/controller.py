"""Controller-failure wrapper: dead RL controllers fall back gracefully.

Wraps any :class:`repro.agents.base.AgentSystem`.  At each episode the
fault schedule decides, per intersection, whether its RL controller is
down; a dead intersection's action is replaced by a classical fallback —
cyclic fixed-time or max-pressure — while the surviving agents keep
running the learned policy.  The inner system still observes and learns
from every step, so a transient outage degrades control quality without
corrupting training.
"""

from __future__ import annotations

import numpy as np

from repro.agents.base import AgentSystem
from repro.env.tsc_env import StepResult, TrafficSignalEnv
from repro.errors import FaultInjectionError
from repro.faults.config import FaultConfig
from repro.faults.schedule import FaultSchedule
from repro.sim.signal import FixedTimeProgram

#: Supported fallback policies for dead controllers.
FALLBACK_POLICIES = ("fixed_time", "max_pressure")


class FallbackController:
    """Stateless-policy substitute for one or more dead RL controllers.

    Computes classical actions (cyclic fixed-time or max-pressure) for
    any intersection of the environment.  Shared by
    :class:`ControllerFaultWrapper` (episode-scoped controller deaths
    during training/evaluation) and the real-time service
    (:mod:`repro.serve`), so both layers degrade identically.
    """

    def __init__(self, policy: str = "max_pressure", fixed_stage_seconds: int = 5) -> None:
        if policy not in FALLBACK_POLICIES:
            raise FaultInjectionError(
                f"unknown fallback {policy!r}; choose from {FALLBACK_POLICIES}"
            )
        self.policy = policy
        self.fixed_stage_seconds = fixed_stage_seconds
        self._programs: dict[str, FixedTimeProgram] = {}

    def action(self, env: TrafficSignalEnv, node_id: str) -> int:
        """Fallback phase for ``node_id`` at the current simulation time."""
        if self.policy == "fixed_time":
            return self._fixed_time_action(env, node_id)
        return self._max_pressure_action(env, node_id)

    def _fixed_time_action(self, env: TrafficSignalEnv, node_id: str) -> int:
        assert env.sim is not None
        program = self._programs.get(node_id)
        if program is None:
            num_phases = env.action_spaces[node_id].n
            program = FixedTimeProgram(
                [(index, self.fixed_stage_seconds) for index in range(num_phases)]
            )
            self._programs[node_id] = program
        return program.phase_at(env.sim.time)

    def _max_pressure_action(self, env: TrafficSignalEnv, node_id: str) -> int:
        assert env.detectors is not None
        plan = env.phase_plans[node_id]
        best_index = 0
        best_pressure = -np.inf
        for index, phase in enumerate(plan.phases):
            pressure = sum(
                env.detectors.movement_pressure(env.network.movements[key])
                for key in phase.green_movements
            )
            if pressure > best_pressure:
                best_index, best_pressure = index, pressure
        return best_index


class ControllerFaultWrapper(AgentSystem):
    """Inject per-episode controller deaths around an agent system."""

    def __init__(
        self,
        inner: AgentSystem,
        config: FaultConfig,
        fallback: str = "max_pressure",
        seed: int = 0,
        fixed_stage_seconds: int = 5,
    ) -> None:
        self.inner = inner
        self.schedule = FaultSchedule(config, seed=seed)
        self.fallback = fallback
        self.fixed_stage_seconds = fixed_stage_seconds
        self.name = f"{inner.name}+{fallback}-fallback"
        self._controller = FallbackController(fallback, fixed_stage_seconds)

    # ------------------------------------------------------------------
    # Delegated lifecycle
    # ------------------------------------------------------------------
    def begin_episode(self, env: TrafficSignalEnv, training: bool) -> None:
        self.schedule.begin_episode()
        self.inner.begin_episode(env, training)

    def observe(self, result: StepResult, env: TrafficSignalEnv) -> None:
        self.inner.observe(result, env)

    def end_episode(self, env: TrafficSignalEnv, training: bool) -> dict:
        return self.inner.end_episode(env, training)

    def communication_bits_per_step(self, env: TrafficSignalEnv) -> int:
        return self.inner.communication_bits_per_step(env)

    def _checkpoint_modules(self) -> dict:
        return self.inner._checkpoint_modules()

    def training_state(self) -> dict[str, np.ndarray]:
        return self.inner.training_state()

    def load_training_state(self, state: dict[str, np.ndarray]) -> None:
        self.inner.load_training_state(state)

    def attach_telemetry(self, telemetry) -> None:
        """Route this wrapper's fault schedule into the telemetry sink."""
        self.schedule.event_sink = telemetry
        self.inner.attach_telemetry(telemetry)

    # ------------------------------------------------------------------
    # Acting with substitution
    # ------------------------------------------------------------------
    def act(
        self,
        observations: dict[str, np.ndarray],
        env: TrafficSignalEnv,
        training: bool,
    ) -> dict[str, int]:
        actions = self.inner.act(observations, env, training)
        for node_id in env.agent_ids:
            if self.schedule.controller_dead(node_id):
                if self.schedule.event_sink is not None:
                    tick = env.sim.time if env.sim is not None else None
                    self.schedule.emit_activation(
                        "controller_death", node_id, tick=tick, scope="episode"
                    )
                actions[node_id] = self._fallback_action(env, node_id)
        return actions

    def dead_controllers(self) -> list[str]:
        """Intersections running on the fallback this episode."""
        return self.schedule.dead_controllers()

    # ------------------------------------------------------------------
    def _fallback_action(self, env: TrafficSignalEnv, node_id: str) -> int:
        return self._controller.action(env, node_id)
