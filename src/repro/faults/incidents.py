"""Deterministic mid-episode incidents: lane and link closures.

Unlike the stochastic fault families in :mod:`repro.faults.config`
(seeded Bernoulli rates), incidents are *scheduled* events — "link
``I1_1->I1_2`` closes at t = 300 s for 200 s" — the workload axis the
scenario zoo uses for its incident scenarios.  They act on the engines
through one knob, ``sim.set_capacity_factor(link_id, factor)``:

* ``link_closure`` — factor 0.0: nothing may enter the link for the
  window; vehicles already on it keep moving and drain out, and
  spillback develops upstream through the normal storage checks.
* ``lane_closure`` — ``(num_lanes - lanes_closed) / num_lanes``: a
  partial capacity reduction, the mesoscopic rendering of losing one
  lane of a multi-lane approach.
* ``capacity`` — an explicit factor in ``[0, 1]``.

The schedule itself is stateless: every tick the engine asks
:meth:`IncidentSchedule.apply` for the desired factor per link and only
changed links are written, so the same schedule object can be attached
to any number of engines (object, SoA, batched replicas) and to
repeated episodes without a reset.  Links absent from an engine's
network are skipped — a sharded worker holds only its shard's
subnetwork, so a city-wide schedule applies cleanly to every worker
(the scenario compiler validates links against the full network at
build time).  Both engines consult effective
storage on every entry attempt, so trajectories under incidents stay
bit-exact across the object fast/slow paths and the SoA engine.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import FaultInjectionError

INCIDENT_KINDS = ("link_closure", "lane_closure", "capacity")


@dataclass(frozen=True)
class Incident:
    """One capacity-reduction window on one link.

    ``factor`` is the effective storage multiplier while the incident is
    active; the named constructors compute it from the incident kind.
    The window is ``[start, start + duration)`` in simulation ticks.
    """

    link: str
    start: int
    duration: int
    factor: float
    kind: str = "capacity"

    def __post_init__(self) -> None:
        if self.start < 0:
            raise FaultInjectionError(
                f"incident on {self.link!r}: start must be >= 0, got {self.start}"
            )
        if self.duration <= 0:
            raise FaultInjectionError(
                f"incident on {self.link!r}: duration must be positive, "
                f"got {self.duration}"
            )
        if not 0.0 <= self.factor <= 1.0:
            raise FaultInjectionError(
                f"incident on {self.link!r}: factor must lie in [0, 1], "
                f"got {self.factor}"
            )
        if self.kind not in INCIDENT_KINDS:
            raise FaultInjectionError(
                f"incident kind must be one of {INCIDENT_KINDS}, got {self.kind!r}"
            )

    @property
    def end(self) -> int:
        return self.start + self.duration

    def active_at(self, t: int) -> bool:
        return self.start <= t < self.end

    @staticmethod
    def link_closure(link: str, start: int, duration: int) -> "Incident":
        """Full closure: nothing enters the link during the window."""
        return Incident(link, start, duration, 0.0, kind="link_closure")

    @staticmethod
    def lane_closure(
        link: str, start: int, duration: int, num_lanes: int, lanes_closed: int = 1
    ) -> "Incident":
        """Close ``lanes_closed`` of the link's ``num_lanes`` lanes."""
        if num_lanes <= 0:
            raise FaultInjectionError(
                f"incident on {link!r}: num_lanes must be positive"
            )
        if not 0 < lanes_closed <= num_lanes:
            raise FaultInjectionError(
                f"incident on {link!r}: lanes_closed must lie in "
                f"[1, {num_lanes}], got {lanes_closed}"
            )
        factor = (num_lanes - lanes_closed) / num_lanes
        return Incident(link, start, duration, factor, kind="lane_closure")


class IncidentSchedule:
    """A fixed timeline of incidents, applied to an engine each tick.

    Attach with ``sim.incidents = schedule``; the engine calls
    :meth:`apply` at the start of every tick.  Overlapping incidents on
    one link compose by taking the *minimum* factor (the most severe
    closure wins).  Links the engine's network does not contain are
    skipped (shard subnetworks); validate link ids at build time, as the
    scenario compiler does.
    """

    def __init__(self, incidents: list[Incident] | tuple[Incident, ...]) -> None:
        self.incidents: tuple[Incident, ...] = tuple(
            sorted(incidents, key=lambda inc: (inc.start, inc.link))
        )
        self._links: tuple[str, ...] = tuple(
            sorted({inc.link for inc in self.incidents})
        )

    def __len__(self) -> int:
        return len(self.incidents)

    def __bool__(self) -> bool:
        return bool(self.incidents)

    @property
    def links(self) -> tuple[str, ...]:
        """Links touched by at least one incident."""
        return self._links

    @property
    def end_time(self) -> int:
        """Tick after which every incident has cleared."""
        return max((inc.end for inc in self.incidents), default=0)

    def factors_at(self, t: int) -> dict[str, float]:
        """Desired capacity factor per touched link at time ``t``.

        Links with no active incident map to 1.0 (healthy) so that
        :meth:`apply` restores capacity when a window ends.
        """
        factors = {link: 1.0 for link in self._links}
        for incident in self.incidents:
            if incident.active_at(t):
                factors[incident.link] = min(
                    factors[incident.link], incident.factor
                )
        return factors

    def apply(self, sim) -> None:
        """Reconcile the engine's capacity factors with time ``sim.time``.

        Idempotent: only links whose desired factor differs from the
        engine's current factor are written, so repeated application at
        the same tick (or across engines sharing the schedule) is safe.
        """
        current = sim.capacity_factors
        known = sim.network.links
        for link, factor in self.factors_at(sim.time).items():
            if link in known and current.get(link, 1.0) != factor:
                sim.set_capacity_factor(link, factor)

    def to_payload(self) -> list[dict]:
        """JSON-compatible form (the scenario spec ``incidents`` list)."""
        return [
            {
                "kind": "capacity",
                "link": inc.link,
                "start": inc.start,
                "duration": inc.duration,
                "factor": inc.factor,
            }
            for inc in self.incidents
        ]
