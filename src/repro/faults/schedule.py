"""Seeded fault schedule: the single source of fault randomness.

A :class:`FaultSchedule` owns one RNG stream per episode, deterministic in
``(seed, episode_seed)``, so a faulty run is exactly reproducible: the
same seeds produce the same dropped readings, corrupted messages and dead
controllers regardless of which agent is being evaluated.

Per-episode faults (stuck detectors, dead controllers) are decided
lazily, on the first query for each key within an episode, from a
dedicated sub-stream — so they do not depend on how often the per-event
faults are sampled.
"""

from __future__ import annotations

import numpy as np

from repro.errors import FaultInjectionError
from repro.faults.config import FaultConfig


class FaultSchedule:
    """Samples fault events for one simulation run."""

    def __init__(self, config: FaultConfig, seed: int = 0) -> None:
        if not isinstance(config, FaultConfig):
            raise FaultInjectionError("FaultSchedule needs a FaultConfig")
        self.config = config
        self._seed = seed
        self._episode = -1
        self._rng = np.random.default_rng(seed)
        self._episode_rng = np.random.default_rng(seed)
        self._stuck: dict[str, bool] = {}
        self._frozen: dict[str, float] = {}
        self._dead: dict[str, bool] = {}
        #: Optional telemetry sink (:class:`repro.obs.telemetry.Telemetry`)
        #: receiving one activation per (fault kind, target) per episode.
        #: Never consulted by the sampling paths, so attaching it cannot
        #: change any RNG draw.
        self.event_sink = None
        self._activated: set[tuple[str, str]] = set()

    # ------------------------------------------------------------------
    # Episode lifecycle
    # ------------------------------------------------------------------
    def begin_episode(self, episode_seed: int | None = None) -> None:
        """Re-key the fault streams for a new episode."""
        self._episode += 1
        if episode_seed is None:
            episode_seed = self._episode
        self._rng = np.random.default_rng((self._seed, episode_seed))
        self._episode_rng = np.random.default_rng((self._seed, episode_seed, 1))
        self._stuck.clear()
        self._frozen.clear()
        self._dead.clear()
        self._activated.clear()

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def emit_activation(
        self,
        kind: str,
        fault_id: str,
        tick: int | None = None,
        scope: str = "event",
    ) -> None:
        """Report the first firing of fault ``kind`` on ``fault_id``.

        Deduplicated per (kind, target) per episode: each fault family
        produces exactly one activation event per target per episode, no
        matter how many individual readings/messages it corrupts.  No-op
        without an attached :attr:`event_sink`.
        """
        if self.event_sink is None:
            return
        key = (kind, str(fault_id))
        if key in self._activated:
            return
        self._activated.add(key)
        self.event_sink.fault_activation(
            kind, fault_id, max(self._episode, 0), tick, scope
        )

    # ------------------------------------------------------------------
    # Detector faults
    # ------------------------------------------------------------------
    def detector_stuck(self, key: str) -> bool:
        """Whether detector ``key`` is frozen for this whole episode."""
        if self.config.detector_stuck <= 0:
            return False
        stuck = self._stuck.get(key)
        if stuck is None:
            stuck = bool(self._episode_rng.random() < self.config.detector_stuck)
            self._stuck[key] = stuck
        return stuck

    def frozen_value(self, key: str, current: float) -> float:
        """Stuck-at value: the first reading seen this episode."""
        return self._frozen.setdefault(key, current)

    def detector_dropped(self, key: str) -> bool:
        """Whether this particular detector query is lost."""
        if self.config.detector_dropout <= 0:
            return False
        return bool(self._rng.random() < self.config.detector_dropout)

    def detector_noise(self) -> float:
        """Additive noise sample for one detector count."""
        if self.config.detector_noise <= 0:
            return 0.0
        return float(self._rng.normal(0.0, self.config.detector_noise))

    # ------------------------------------------------------------------
    # Communication faults
    # ------------------------------------------------------------------
    def message_dropped(self) -> bool:
        if self.config.message_drop <= 0:
            return False
        return bool(self._rng.random() < self.config.message_drop)

    def message_corrupted(self) -> bool:
        if self.config.message_corrupt <= 0:
            return False
        return bool(self._rng.random() < self.config.message_corrupt)

    def message_delayed(self) -> bool:
        if self.config.message_delay <= 0:
            return False
        return bool(self._rng.random() < self.config.message_delay)

    def corrupt(self, message: np.ndarray) -> np.ndarray:
        """Channel garbage with the payload's shape (uniform in [0, 1],
        the codomain of the logistic-squashed messages)."""
        return self._rng.uniform(0.0, 1.0, size=np.shape(message))

    # ------------------------------------------------------------------
    # Controller faults
    # ------------------------------------------------------------------
    def controller_dead(self, agent_id: str) -> bool:
        """Whether ``agent_id``'s RL controller is down this episode."""
        if self.config.controller_failure <= 0:
            return False
        dead = self._dead.get(agent_id)
        if dead is None:
            dead = bool(self._episode_rng.random() < self.config.controller_failure)
            self._dead[agent_id] = dead
        return dead

    def dead_controllers(self) -> list[str]:
        """Agents already determined dead this episode (diagnostics)."""
        return sorted(a for a, dead in self._dead.items() if dead)
