"""Fault injection and graceful degradation.

Composable fault models for the three layers of the stack a real
deployment must survive:

* :mod:`repro.faults.detectors` — sensing faults (dropout, stuck-at,
  noise) applied to the range-limited detector readings,
* message-channel faults (drop, corruption, one-step delay) applied by
  :class:`repro.agents.pairuplight.messaging.FaultyMessageChannel`,
* :mod:`repro.faults.controller` — per-episode controller deaths with
  fixed-time or max-pressure fallback.

Everything is driven by one seeded :class:`FaultSchedule`, so a faulty
run is exactly reproducible.  See :mod:`repro.eval.robustness` for the
fault-rate sweeps built on top.
"""

from repro.faults.config import FAULT_KINDS, FaultConfig
from repro.faults.controller import (
    FALLBACK_POLICIES,
    ControllerFaultWrapper,
    FallbackController,
)
from repro.faults.detectors import FaultyDetectorSuite
from repro.faults.incidents import INCIDENT_KINDS, Incident, IncidentSchedule
from repro.faults.schedule import FaultSchedule

__all__ = [
    "ControllerFaultWrapper",
    "FALLBACK_POLICIES",
    "FAULT_KINDS",
    "FallbackController",
    "FaultConfig",
    "FaultSchedule",
    "FaultyDetectorSuite",
    "INCIDENT_KINDS",
    "Incident",
    "IncidentSchedule",
]
