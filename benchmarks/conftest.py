"""Shared configuration for the experiment benchmarks.

Every benchmark regenerates one of the paper's tables or figures at a
reduced scale (documented in EXPERIMENTS.md): a 3x3 grid instead of 6x6,
a 450 s demand horizon instead of 2700 s, and tens of training episodes
instead of hundreds/thousands.  The *protocol* (train on pattern 1,
evaluate frozen policies in drain mode, etc.) is identical to the paper.

Each benchmark prints the regenerated rows/series next to the paper's
published numbers and writes the same text to
``benchmarks/results/<name>.txt`` so results survive output capture.
"""

from __future__ import annotations

import os
import sys

import pytest

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "tests"))

from repro.eval.harness import ExperimentScale

#: Reduced-scale configuration used by all grid benchmarks.  40 episodes
#: is deliberately past the knee of the PPO learning curve at this scale
#: (learning visibly starts around episode 20 — see fig7's block
#: averages); shorter budgets evaluate an effectively untrained policy.
BENCH_SCALE = ExperimentScale(
    rows=3,
    cols=3,
    peak_rate=600.0,
    t_peak=150.0,
    light_duration=300.0,
    horizon_ticks=450,
    max_ticks=3600,
    train_episodes=40,
)

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def record_result(name: str, text: str) -> None:
    """Print a result block and persist it under benchmarks/results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    banner = f"\n{'=' * 72}\n{name}\n{'=' * 72}\n{text}\n"
    print(banner)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as handle:
        handle.write(text + "\n")


@pytest.fixture
def once(benchmark):
    """Run an expensive experiment exactly once under the benchmark timer."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
