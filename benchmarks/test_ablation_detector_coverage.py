"""Ablation — detector coverage (DESIGN.md decision #1; paper Fig. 2).

The paper argues that because sensors cover only ~50 m, raw queue length
saturates and *pressure* is the right state signal.  This ablation
trains with 25 m / 50 m / 150 m coverage: shorter coverage caps what the
agent can see; longer coverage approaches full observability.
"""

from __future__ import annotations

import numpy as np

from repro.agents.pairuplight import PairUpLightSystem
from repro.env.tsc_env import EnvConfig, TrafficSignalEnv
from repro.rl.runner import train
from repro.scenarios.flows import flow_pattern
from repro.scenarios.grid import build_grid

from conftest import BENCH_SCALE, record_result

EPISODES = 15
COVERAGES = (25.0, 50.0, 150.0)


def _run():
    results = {}
    grid = build_grid(BENCH_SCALE.rows, BENCH_SCALE.cols)
    flows = flow_pattern(
        grid, 1, peak_rate=BENCH_SCALE.peak_rate, t_peak=BENCH_SCALE.t_peak
    )
    for coverage in COVERAGES:
        env = TrafficSignalEnv(
            grid.network,
            grid.phase_plans,
            flows,
            EnvConfig(
                horizon_ticks=BENCH_SCALE.horizon_ticks,
                max_ticks=BENCH_SCALE.max_ticks,
                coverage=coverage,
            ),
            seed=0,
        )
        agent = PairUpLightSystem(env, seed=0)
        results[coverage] = train(agent, env, episodes=EPISODES, seed=0)
    return results


def test_ablation_detector_coverage(once):
    results = once(_run)
    lines = [f"Detector-coverage ablation ({EPISODES} episodes, 3x3 grid)", ""]
    for coverage, history in results.items():
        curve = history.wait_curve
        lines.append(
            f"coverage={coverage:>5.0f} m  first-5={curve[:5].mean():7.1f}s "
            f"best={curve.min():7.1f}s final-5={curve[-5:].mean():7.1f}s"
        )
    lines.append("")
    lines.append("Paper Fig. 2: with 50 m sensors, pressure-based state "
                 "remains informative even when queues exceed the sensing "
                 "range; the 50 m setting is the paper's configuration.")
    record_result("ablation_detector_coverage", "\n".join(lines))

    for history in results.values():
        assert np.all(np.isfinite(history.wait_curve))
