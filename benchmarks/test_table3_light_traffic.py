"""Table III — light-traffic study (train AND evaluate on pattern 5).

Paper values (6x6 grid, 300/90 veh/h uniform):

              Fixedtime  SingleAgent  MA2C    CoLight  PairUpLight
    Pattern 5   262.81      99.91     245.64   192.17     86.33

Shape expectations: all RL models handle light traffic; PairUpLight and
SingleAgent are the strongest (the paper's point is that MARL machinery
is unnecessary — but not harmful for PairUpLight — under light demand).
"""

from __future__ import annotations

from repro.eval.comparison import default_model_factories, run_table3

from conftest import BENCH_SCALE, record_result

PAPER_TABLE3 = {
    "Fixedtime": 262.81,
    "SingleAgent": 99.91,
    "MA2C": 245.64,
    "CoLight": 192.17,
    "PairUpLight": 86.33,
}


def test_table3_light_traffic(once):
    table = once(run_table3, BENCH_SCALE, default_model_factories(seed=0), 0)

    lines = ["Light-traffic average travel time (s), trained on pattern 5:", ""]
    lines.append(f"{'Model':<14} {'measured':>10} {'paper':>10}")
    for model in PAPER_TABLE3:
        lines.append(
            f"{model:<14} {table.value(model, 5):>10.2f} {PAPER_TABLE3[model]:>10.2f}"
        )
    record_result("table3_light_traffic", "\n".join(lines))

    # Shape: PairUpLight handles light traffic at least as well as
    # Fixedtime and MA2C (paper: 86 vs 263 and 246).
    assert table.value("PairUpLight", 5) < table.value("Fixedtime", 5)
    assert table.value("PairUpLight", 5) < table.value("MA2C", 5)
