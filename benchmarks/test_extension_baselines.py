"""Extension — classical and simplified baselines vs PairUpLight.

Beyond the paper's comparison set, this bench adds:

* **MaxPressure** — Varaiya's throughput-optimal non-learning policy,
* **LongestQueue** — greedy queue-chasing control (known to starve),
* **IQL** — CoLight with the graph attention removed (isolates what the
  neighbourhood encoder contributes).

Shape expectations: MaxPressure is a strong baseline (clearly beats
Fixedtime); a well-trained PairUpLight is competitive with it; greedy
LongestQueue is erratic under turning traffic.
"""

from __future__ import annotations

import numpy as np

from repro.agents.fixed_time import FixedTimeSystem
from repro.agents.iql import IQLSystem
from repro.agents.max_pressure import LongestQueueSystem, MaxPressureSystem
from repro.agents.pairuplight import PairUpLightSystem
from repro.eval.harness import GridExperiment

from conftest import BENCH_SCALE, record_result


def _run():
    experiment = GridExperiment(BENCH_SCALE, seed=0)
    results = {}
    # Static / non-learning controllers evaluate directly.
    for name, factory in (
        ("Fixedtime", lambda env: FixedTimeSystem(env)),
        ("MaxPressure", lambda env: MaxPressureSystem(env)),
        ("LongestQueue", lambda env: LongestQueueSystem()),
    ):
        agent = factory(experiment.train_env(1))
        results[name] = experiment.evaluate_agent(agent, 1)
    # Learning controllers train on pattern 1 first.
    for name, factory in (
        ("IQL", lambda env: IQLSystem(env, seed=0)),
        ("PairUpLight", lambda env: PairUpLightSystem(env, seed=0)),
    ):
        agent, _ = experiment.train_agent(factory, pattern=1)
        results[name] = experiment.evaluate_agent(agent, 1)
    return results


def test_extension_baselines(once):
    results = once(_run)
    lines = [
        f"Extended baseline comparison (pattern 1, "
        f"{BENCH_SCALE.train_episodes} episodes for learners)",
        "",
        f"{'Controller':<14} {'avg travel time':>16} {'completion':>11}",
    ]
    for name, result in sorted(
        results.items(), key=lambda kv: kv[1].average_travel_time
    ):
        lines.append(
            f"{name:<14} {result.average_travel_time:>14.1f} s "
            f"{result.completion_rate:>10.0%}"
        )
    record_result("extension_baselines", "\n".join(lines))

    att = {name: r.average_travel_time for name, r in results.items()}
    # MaxPressure is the strong classical baseline: beats Fixedtime.
    assert att["MaxPressure"] < att["Fixedtime"]
    # Trained PairUpLight also beats Fixedtime.
    assert att["PairUpLight"] < att["Fixedtime"]
    # Everything produced finite numbers.
    assert all(np.isfinite(v) for v in att.values())
