"""Table II — average travel time across flow patterns (all five models).

Paper protocol: train every model on pattern 1 only, evaluate the frozen
policies on patterns 1-5 in drain mode.

Paper values (6x6 grid, 500 veh/h peak, full training):

    Model        | P1       | P2       | P3       | P4       | P5
    Fixedtime    |  3395.34 |  6236.73 |  3446.64 |  4807.81 |  262.81
    SingleAgent  |   936.11 |  3298.14 |  2740.10 |  4118.31 |   99.91
    MA2C         | 15482.22 | 13327.66 | 16589.37 | 15210.02 |  375.35
    CoLight      |  3072.75 |  3157.26 |  2472.13 |  3151.64 |  779.16
    PairUpLight  |   388.47 |   414.29 |   330.84 |   445.21 |   87.50

Shape expectations at our reduced scale: PairUpLight beats Fixedtime on
the trained pattern and is never catastrophically worse than the
adaptive baselines; untrained-pattern evaluation degrades baselines more
than PairUpLight.
"""

from __future__ import annotations

import numpy as np

from repro.eval.comparison import default_model_factories, run_table2

from conftest import BENCH_SCALE, record_result

PAPER_TABLE2 = {
    "Fixedtime": {1: 3395.34, 2: 6236.73, 3: 3446.64, 4: 4807.81, 5: 262.81},
    "SingleAgent": {1: 936.11, 2: 3298.14, 3: 2740.10, 4: 4118.31, 5: 99.91},
    "MA2C": {1: 15482.22, 2: 13327.66, 3: 16589.37, 4: 15210.02, 5: 375.35},
    "CoLight": {1: 3072.75, 2: 3157.26, 3: 2472.13, 4: 3151.64, 5: 779.16},
    "PairUpLight": {1: 388.47, 2: 414.29, 3: 330.84, 4: 445.21, 5: 87.50},
}


def test_table2_cross_pattern_travel_time(once):
    table = once(
        run_table2, BENCH_SCALE, default_model_factories(seed=0), 0
    )

    lines = [
        table.formatted(
            f"Measured ({BENCH_SCALE.rows}x{BENCH_SCALE.cols} grid, "
            f"{BENCH_SCALE.train_episodes} training episodes)"
        )
    ]
    lines.append("")
    lines.append("Paper (6x6 grid, full training):")
    header = ["Model".ljust(18)] + [f"Pattern {p}".rjust(11) for p in range(1, 6)]
    lines.append(" | ".join(header))
    for model, cells in PAPER_TABLE2.items():
        row = [model.ljust(18)] + [f"{cells[p]:11.2f}" for p in range(1, 6)]
        lines.append(" | ".join(row))
    record_result("table2_travel_time", "\n".join(lines))

    # Shape assertions (paper's qualitative claims).
    for pattern in (1, 2, 3, 4):
        assert table.value("PairUpLight", pattern) < table.value(
            "Fixedtime", pattern
        ), f"PairUpLight must beat Fixedtime on congested pattern {pattern}"
    # PairUpLight is the best or near-best model overall.
    pul_mean = np.mean([table.value("PairUpLight", p) for p in range(1, 6)])
    for model in ("Fixedtime", "MA2C"):
        other_mean = np.mean([table.value(model, p) for p in range(1, 6)])
        assert pul_mean < other_mean, f"PairUpLight should beat {model} on average"
