"""Fig. 7 — PairUpLight training curve with baseline reference lines.

Paper: 1000 training episodes on the 6x6 grid / pattern 1; the average
waiting time starts high, declines sharply, and ends well below both the
fixed-time and single-agent reference levels (best episode: 3.13 s).

Scaled here to 40 episodes on the 3x3 grid.  Shape expectations: a
declining curve whose best episode undercuts the fixed-time reference,
and a shrinking spread between early and late episodes (the paper's
narrowing-variance observation).
"""

from __future__ import annotations

import numpy as np

from repro.agents.fixed_time import FixedTimeSystem
from repro.agents.pairuplight import PairUpLightSystem
from repro.eval.harness import GridExperiment
from repro.rl.runner import run_episode

from conftest import BENCH_SCALE, record_result

EPISODES = 40
PAPER_BEST_WAIT = 3.13  # seconds, at episode 980 of 1000


def _run():
    experiment = GridExperiment(BENCH_SCALE.with_episodes(EPISODES), seed=0)
    agent, history = experiment.train_agent(
        lambda env: PairUpLightSystem(env, seed=0), pattern=1
    )
    env = experiment.train_env(1)
    fixed_wait, _, _ = run_episode(FixedTimeSystem(env), env, training=False, seed=99)
    return history, fixed_wait


def test_fig7_training_curve(once):
    history, fixed_wait = once(_run)
    curve = history.wait_curve
    smoothed = history.smoothed_wait_curve(window=5)

    lines = [
        f"PairUpLight training curve ({EPISODES} episodes, 3x3 grid, pattern 1)",
        f"Fixedtime reference average wait: {fixed_wait:.2f} s",
        "",
        "episode-block averages (5-episode blocks):",
    ]
    for start in range(0, EPISODES, 5):
        block = curve[start : start + 5]
        lines.append(f"  episodes {start:>3}-{start + 4:>3}: {block.mean():8.2f} s")
    best = history.best_episode()
    lines.append("")
    lines.append(f"best episode: #{best.episode} at {best.avg_wait:.2f} s "
                 f"(paper: 3.13 s at episode 980 of 1000)")
    early_spread = float(curve[:10].std())
    late_spread = float(curve[-10:].std())
    lines.append(f"early spread (std over first 10): {early_spread:.2f} s; "
                 f"late spread: {late_spread:.2f} s")
    record_result("fig7_training_curve", "\n".join(lines))

    # Shape: declining curve...
    assert smoothed[-1] < smoothed[0]
    # ...whose best episode undercuts the fixed-time reference.
    assert best.avg_wait < fixed_wait
