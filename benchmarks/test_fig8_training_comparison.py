"""Fig. 8 — first-200-episode training comparison + communication ablation.

Paper: over the first 200 episodes on pattern 1, PairUpLight starts
slower (learning the communication protocol) but ends below CoLight and
MA2C, converging at 76 s — an 81.46% improvement over CoLight and 83.72%
over MA2C.  Removing the communication module (orange dotted line)
degrades PairUpLight.

Scaled here to 40 episodes on the 3x3 grid.  Shape expectations:
PairUpLight's final waiting time beats MA2C's and CoLight's, and is
within noise of the no-communication ablation (at this small scale the
communication benefit has not paid off yet — the paper observes the same
"initial lag" before PairUpLight overtakes at hundreds of episodes).
"""

from __future__ import annotations

import numpy as np

from repro.agents.colight import CoLightSystem
from repro.agents.ma2c import MA2CSystem
from repro.agents.pairuplight import PairUpLightConfig, PairUpLightSystem
from repro.eval.harness import GridExperiment

from conftest import BENCH_SCALE, record_result

EPISODES = 40
PAPER = {
    "PairUpLight": "converges at 76 s",
    "CoLight": "+81.46% vs PairUpLight",
    "MA2C": "+83.72% vs PairUpLight",
}


def _run():
    factories = {
        "PairUpLight": lambda env: PairUpLightSystem(env, seed=0),
        "PairUpLight-NoComm": lambda env: PairUpLightSystem(
            env, PairUpLightConfig(communicate=False), seed=0
        ),
        "CoLight": lambda env: CoLightSystem(env, seed=0),
        "MA2C": lambda env: MA2CSystem(env, seed=0),
    }
    experiment = GridExperiment(BENCH_SCALE.with_episodes(EPISODES), seed=0)
    histories = {}
    for name, factory in factories.items():
        _, history = experiment.train_agent(factory, pattern=1)
        histories[name] = history
    return histories


def test_fig8_training_comparison(once):
    histories = once(_run)

    lines = [f"Training comparison over {EPISODES} episodes (3x3 grid, pattern 1)", ""]
    lines.append(f"{'Model':<20} {'first-5 mean':>13} {'best':>8} {'final-10 mean':>14}")
    finals = {}
    for name, history in histories.items():
        curve = history.wait_curve
        finals[name] = float(curve[-10:].mean())
        lines.append(
            f"{name:<20} {curve[:5].mean():>12.1f}s {curve.min():>7.1f}s "
            f"{finals[name]:>13.1f}s"
        )
    lines.append("")
    lines.append("Paper (200 episodes, 6x6): " + "; ".join(
        f"{k}: {v}" for k, v in PAPER.items()
    ))
    record_result("fig8_training_comparison", "\n".join(lines))

    # Shape: PairUpLight ends below both baselines.
    assert finals["PairUpLight"] < finals["MA2C"]
    assert finals["PairUpLight"] < finals["CoLight"]
    # Communication ablation: with-comm stays within noise of no-comm at
    # this short budget (the paper's "initial lag" phase); the crossover
    # where communication pays off needs the full-scale run.
    assert finals["PairUpLight"] <= finals["PairUpLight-NoComm"] * 1.25
