"""Micro-benchmarks of the substrate: simulator throughput and network
forward/backward latency.

These are conventional multi-round pytest benchmarks (not one-shot
experiment regenerations) characterising the two components every
experiment leans on: the mesoscopic engine and the numpy autograd stack.
"""

from __future__ import annotations

import numpy as np

from repro.agents.pairuplight.actor import CoordinatedActor
from repro.env.tsc_env import EnvConfig, TrafficSignalEnv
from repro.scenarios.flows import flow_pattern
from repro.scenarios.grid import build_grid
from repro.sim.demand import DemandGenerator
from repro.sim.engine import Simulation
from repro.sim.routing import Router


def _loaded_sim() -> Simulation:
    grid = build_grid(6, 6)
    flows = flow_pattern(grid, 1, peak_rate=500.0, t_peak=900.0)
    demand = DemandGenerator(flows, Router(grid.network), seed=0)
    sim = Simulation(grid.network, demand, grid.phase_plans)
    sim.step(600)  # warm the network up to realistic occupancy
    return sim


def test_engine_tick_throughput(benchmark):
    """One hundred 1-second ticks of the paper's 6x6 grid under load."""
    sim = _loaded_sim()
    benchmark(sim.step, 100)
    assert sim.total_created > 0


def test_env_step_latency(benchmark):
    """One full environment step (36 agents, observations + rewards)."""
    grid = build_grid(6, 6)
    flows = flow_pattern(grid, 1, peak_rate=500.0, t_peak=900.0)
    env = TrafficSignalEnv(
        grid.network, grid.phase_plans, flows,
        EnvConfig(horizon_ticks=100_000, max_ticks=200_000), seed=0,
    )
    env.reset(seed=0)
    actions = {a: 0 for a in env.agent_ids}
    benchmark(env.step, actions)


def test_actor_forward_latency(benchmark):
    """Batched actor forward pass for 36 parameter-shared agents."""
    rng = np.random.default_rng(0)
    actor = CoordinatedActor(obs_dim=8, num_phases=4, message_dim=1, rng=rng)
    obs = rng.normal(size=(36, 8))
    msg = rng.normal(size=(36, 1))
    state = actor.initial_state(36)
    benchmark(actor, obs, msg, state)


def test_actor_backward_latency(benchmark):
    """Forward + backward through the actor (one PPO re-evaluation step)."""
    rng = np.random.default_rng(0)
    actor = CoordinatedActor(obs_dim=8, num_phases=4, message_dim=1, rng=rng)
    obs = rng.normal(size=(8, 8))
    msg = rng.normal(size=(8, 1))

    def step():
        logits, message, _ = actor(obs, msg, actor.initial_state(8))
        loss = (logits * logits).sum() + (message * message).sum()
        actor.zero_grad()
        loss.backward()

    benchmark(step)
