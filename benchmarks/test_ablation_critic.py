"""Ablation — critic centralisation (DESIGN.md decision #4).

PairUpLight's critic sees one- and two-hop neighbour pressures (paper
Section V-B, Eq. 9).  This ablation trains the identical system with a
critic restricted to the actor's local observation.
"""

from __future__ import annotations

import numpy as np

from repro.agents.pairuplight import PairUpLightConfig, PairUpLightSystem
from repro.eval.harness import GridExperiment

from conftest import BENCH_SCALE, record_result

EPISODES = 20


def _run():
    results = {}
    for centralized in (True, False):
        experiment = GridExperiment(BENCH_SCALE.with_episodes(EPISODES), seed=0)
        _, history = experiment.train_agent(
            lambda env, c=centralized: PairUpLightSystem(
                env, PairUpLightConfig(centralized_critic=c), seed=0
            ),
            pattern=1,
        )
        results["centralized" if centralized else "local"] = history
    return results


def test_ablation_critic_centralisation(once):
    results = once(_run)
    lines = [f"Critic-centralisation ablation ({EPISODES} episodes, 3x3 grid)", ""]
    for name, history in results.items():
        curve = history.wait_curve
        lines.append(
            f"{name:<12} first-5={curve[:5].mean():7.1f}s "
            f"best={curve.min():7.1f}s final-5={curve[-5:].mean():7.1f}s"
        )
    lines.append("")
    lines.append("Paper Section V-B: the two-hop critic stabilises value "
                 "learning by seeing the congestion that will arrive next.")
    record_result("ablation_critic_centralisation", "\n".join(lines))

    for history in results.values():
        assert np.all(np.isfinite(history.wait_curve))
        assert history.wait_curve.min() < history.wait_curve[:3].mean()
