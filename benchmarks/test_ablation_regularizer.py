"""Ablation — message-channel noise (DESIGN.md decision #3).

Algorithm 1 regularizes messages as ``Logistic(N(m, sigma))``.  The
noise is the exploration mechanism of the continuous message action:
too little and the channel cannot explore protocols, too much and the
channel is pure noise.  This ablation sweeps sigma.
"""

from __future__ import annotations

import numpy as np

from repro.agents.pairuplight import PairUpLightConfig, PairUpLightSystem
from repro.eval.harness import GridExperiment

from conftest import BENCH_SCALE, record_result

EPISODES = 20
SIGMAS = (0.1, 0.5, 2.0)  # 0.5 is the repository default (paper-style)


def _run():
    results = {}
    for sigma in SIGMAS:
        experiment = GridExperiment(BENCH_SCALE.with_episodes(EPISODES), seed=0)
        _, history = experiment.train_agent(
            lambda env, s=sigma: PairUpLightSystem(
                env, PairUpLightConfig(sigma=s), seed=0
            ),
            pattern=1,
        )
        results[sigma] = history
    return results


def test_ablation_message_regularizer(once):
    results = once(_run)
    lines = [f"Message-noise (sigma) ablation ({EPISODES} episodes, 3x3 grid)", ""]
    for sigma, history in results.items():
        curve = history.wait_curve
        lines.append(
            f"sigma={sigma:<4} first-5={curve[:5].mean():7.1f}s "
            f"best={curve.min():7.1f}s final-5={curve[-5:].mean():7.1f}s"
        )
    lines.append("")
    lines.append("DIAL-style noisy-logistic regularisation: moderate noise "
                 "(sigma~0.5) explores the protocol space without drowning it.")
    record_result("ablation_message_regularizer", "\n".join(lines))

    for history in results.values():
        assert np.all(np.isfinite(history.wait_curve))
        assert history.wait_curve.min() < history.wait_curve[:3].mean()
