"""Ablation — partner-selection strategy (DESIGN.md decision #2).

The paper's key design choice is pairing each intersection with the
*most congested upstream* neighbour.  This ablation trains PairUpLight
with four strategies:

* ``upstream`` — the paper's congestion-aware pairing,
* ``fixed``    — a static upstream neighbour (never reacts to traffic),
* ``random``   — a random upstream neighbour each step,
* ``self``     — self-loop only (no inter-agent information).
"""

from __future__ import annotations

import numpy as np

from repro.agents.pairuplight import PairUpLightConfig, PairUpLightSystem
from repro.eval.harness import GridExperiment

from conftest import BENCH_SCALE, record_result

EPISODES = 20
STRATEGIES = ("upstream", "fixed", "random", "self")


def _run():
    results = {}
    for strategy in STRATEGIES:
        experiment = GridExperiment(BENCH_SCALE.with_episodes(EPISODES), seed=0)
        _, history = experiment.train_agent(
            lambda env, s=strategy: PairUpLightSystem(
                env, PairUpLightConfig(partner_strategy=s), seed=0
            ),
            pattern=1,
        )
        results[strategy] = history
    return results


def test_ablation_partner_strategy(once):
    results = once(_run)
    lines = [f"Partner-selection ablation ({EPISODES} episodes, 3x3 grid)", ""]
    finals = {}
    for strategy, history in results.items():
        curve = history.wait_curve
        finals[strategy] = float(curve[-5:].mean())
        lines.append(
            f"{strategy:<10} first-5={curve[:5].mean():7.1f}s "
            f"best={curve.min():7.1f}s final-5={finals[strategy]:7.1f}s"
        )
    lines.append("")
    lines.append("Paper (Section V-B): the most-congested-upstream pairing is "
                 "the design choice; alternatives lose the congestion-aware "
                 "routing of information.")
    record_result("ablation_partner_strategy", "\n".join(lines))

    # Sanity: every variant trains (improves from its start)...
    for strategy, history in results.items():
        assert history.wait_curve.min() < history.wait_curve[:3].mean()
    # ...and the paper's choice is competitive (not the worst variant).
    assert finals["upstream"] <= max(finals.values())
