"""Fig. 11 — communication bandwidth: 1 vs 2 message elements.

Paper: increasing the message from one to two 32-bit values does NOT
improve training — the single message is the most effective bandwidth.

Scaled here to 25 episodes on the 3x3 grid.  Shape expectation: the
1-element configuration's late-training waiting time is no worse than
the 2-element configuration's (within a noise margin).
"""

from __future__ import annotations

import numpy as np

from repro.agents.pairuplight import PairUpLightConfig, PairUpLightSystem
from repro.eval.harness import GridExperiment

from conftest import BENCH_SCALE, record_result

EPISODES = 25


def _run():
    histories = {}
    for message_dim in (1, 2):
        experiment = GridExperiment(BENCH_SCALE.with_episodes(EPISODES), seed=0)
        _, history = experiment.train_agent(
            lambda env, d=message_dim: PairUpLightSystem(
                env, PairUpLightConfig(message_dim=d), seed=0
            ),
            pattern=1,
        )
        histories[message_dim] = history
    return histories


def test_fig11_bandwidth(once):
    histories = once(_run)

    lines = [f"Message bandwidth comparison ({EPISODES} episodes, 3x3 grid)", ""]
    finals = {}
    for dim, history in histories.items():
        curve = history.wait_curve
        finals[dim] = float(curve[-5:].mean())
        lines.append(
            f"message_dim={dim} ({dim * 32:>3} bits): "
            f"first-5={curve[:5].mean():7.1f}s best={curve.min():7.1f}s "
            f"final-5={finals[dim]:7.1f}s"
        )
    lines.append("")
    lines.append("Paper Fig. 11: one 32-bit message trains at least as well as "
                 "two; extra bandwidth does not help.")
    record_result("fig11_bandwidth", "\n".join(lines))

    # Shape: 32-bit message is not worse than 64-bit (15% noise margin).
    assert finals[1] <= finals[2] * 1.15
