"""Table IV — communication overhead analysis.

Paper values (bits received from other intersections per step):

    MA2C         queue length + policy outputs from four neighbours : 1280
    CoLight      link-level pressure from four neighbours           : 1536
    PairUpLight  message from one of its four neighbours            :   32

Our observation vector is leaner than the paper's SUMO state (8 values
per intersection vs their richer per-lane encodings), so MA2C's and
CoLight's absolute bit counts are smaller here — but the *ratios* are
the reproduction target: PairUpLight uses exactly 32 bits, one to two
orders of magnitude below both baselines.
"""

from __future__ import annotations

from repro.agents.colight import CoLightSystem
from repro.agents.ma2c import MA2CSystem
from repro.agents.pairuplight import PairUpLightSystem
from repro.eval.comm_overhead import formatted_overhead_table, overhead_table
from repro.eval.harness import GridExperiment

from conftest import BENCH_SCALE, record_result

PAPER_TABLE4 = {"MA2C": 1280, "CoLight": 1536, "PairUpLight": 32}


def _build_rows():
    experiment = GridExperiment(BENCH_SCALE, seed=0)
    env = experiment.train_env(1)
    # Interior-heavy grid so "four neighbours" is the typical case.
    agents = [
        MA2CSystem(env, seed=0),
        CoLightSystem(env, seed=0),
        PairUpLightSystem(env, seed=0),
    ]
    return overhead_table(agents, env)


def test_table4_comm_overhead(once):
    rows = once(_build_rows)
    bits = {row.model: row.bits_per_step for row in rows}

    lines = [formatted_overhead_table(rows), "", "Paper values:"]
    for model, paper_bits in PAPER_TABLE4.items():
        lines.append(f"    {model:<14} {paper_bits:>6d} bits")
    record_result("table4_comm_overhead", "\n".join(lines))

    # Exact claim: PairUpLight transmits a single 32-bit message.
    assert bits["PairUpLight"] == PAPER_TABLE4["PairUpLight"] == 32
    # Shape: both baselines need over an order of magnitude more.
    assert bits["MA2C"] >= 10 * bits["PairUpLight"]
    assert bits["CoLight"] >= 10 * bits["PairUpLight"]
