"""Ablation — parameter sharing vs independent actors (DESIGN.md #5).

The paper attributes part of PairUpLight's sample efficiency to
parameter sharing across homogeneous intersections (Section V-A) — and
attributes part of MA2C's collapse under saturation to its *lack* of
sharing.  This ablation trains PairUpLight both ways on the same grid.
"""

from __future__ import annotations

import numpy as np

from repro.agents.pairuplight import PairUpLightConfig, PairUpLightSystem
from repro.eval.harness import GridExperiment
from repro.rl.ppo import PPOConfig

from conftest import BENCH_SCALE, record_result

EPISODES = 20


def _run():
    results = {}
    for shared in (True, False):
        experiment = GridExperiment(BENCH_SCALE.with_episodes(EPISODES), seed=0)
        config = PairUpLightConfig(
            parameter_sharing=shared,
            ppo=PPOConfig(epochs=2, minibatch_agents=9) if not shared else PPOConfig(),
        )
        _, history = experiment.train_agent(
            lambda env, c=config: PairUpLightSystem(env, c, seed=0), pattern=1
        )
        results["shared" if shared else "independent"] = history
    return results


def test_ablation_parameter_sharing(once):
    results = once(_run)
    lines = [f"Parameter-sharing ablation ({EPISODES} episodes, 3x3 grid)", ""]
    for name, history in results.items():
        curve = history.wait_curve
        lines.append(
            f"{name:<12} first-5={curve[:5].mean():7.1f}s "
            f"best={curve.min():7.1f}s final-5={curve[-5:].mean():7.1f}s"
        )
    lines.append("")
    lines.append("Paper Section V-A: sharing improves sample efficiency on "
                 "homogeneous grids — one policy learns from all 9 agents' "
                 "experience at once.")
    record_result("ablation_parameter_sharing", "\n".join(lines))

    for history in results.values():
        assert np.all(np.isfinite(history.wait_curve))
    shared = results["shared"].wait_curve
    # Sample-efficiency claim: shared training reaches a better best-so-far
    # within the same budget (generous 15% noise margin).
    independent = results["independent"].wait_curve
    assert shared.min() <= independent.min() * 1.15
