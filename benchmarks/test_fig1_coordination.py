"""Fig. 1 — the motivating coordination effect.

The paper's opening figure argues that *coordinated* signal control
(all east-west greens aligned along a corridor) beats uncoordinated
per-intersection control.  This bench quantifies that claim in its
cleanest classical form: a 5-intersection arterial under (a) green-wave
offset fixed-time plans matched to the link travel time, (b) the same
plans with zero offsets, and (c) MaxPressure adaptive control.
"""

from __future__ import annotations

import numpy as np

from repro.agents.max_pressure import MaxPressureSystem
from repro.env.tsc_env import EnvConfig, TrafficSignalEnv
from repro.rl.runner import evaluate
from repro.scenarios.arterial import build_arterial
from repro.sim.demand import DemandGenerator, Flow
from repro.sim.engine import Simulation
from repro.sim.metrics import average_travel_time
from repro.sim.routing import Router

from conftest import record_result


def _run_programs(scenario, programs, max_ticks=4000):
    demand = DemandGenerator(
        [Flow(f.name, f.origin_link, f.destination_link, f.profile)
         for f in scenario.flows],
        Router(scenario.network),
        seed=0,
    )
    sim = Simulation(scenario.network, demand, scenario.phase_plans)
    horizon = int(demand.end_time)
    while sim.time < max_ticks and not (sim.time > horizon and sim.is_drained()):
        for node_id, program in programs.items():
            sim.set_phase(node_id, program.phase_at(sim.time))
        sim.step()
    return average_travel_time(sim)


def _run():
    scenario = build_arterial(
        intersections=5, main_rate=800.0, cross_rate=150.0, duration=600.0
    )
    wave = _run_programs(scenario, scenario.green_wave_programs())
    flat = _run_programs(scenario, scenario.uncoordinated_programs())
    env = TrafficSignalEnv(
        scenario.network,
        scenario.phase_plans,
        scenario.flows,
        EnvConfig(horizon_ticks=600, max_ticks=4000, drain=True),
    )
    adaptive = evaluate(MaxPressureSystem(env), env, episodes=1, seed=0)
    return wave, flat, adaptive.average_travel_time


def test_fig1_coordination_effect(once):
    wave, flat, adaptive = once(_run)
    lines = [
        "Coordination effect on a 5-intersection arterial (800 veh/h main road)",
        "",
        f"{'Controller':<28} {'avg travel time':>16}",
        f"{'Green-wave (coordinated)':<28} {wave:>14.1f} s",
        f"{'Same plans, no offsets':<28} {flat:>14.1f} s",
        f"{'MaxPressure (adaptive)':<28} {adaptive:>14.1f} s",
        "",
        "Paper Fig. 1: aligning greens along the corridor lets platoons "
        "flow through every intersection — the motivation for coordinated "
        "multi-intersection control.",
    ]
    record_result("fig1_coordination", "\n".join(lines))

    # The motivating claim: coordination beats identical uncoordinated plans.
    assert wave < flat
    assert np.isfinite(adaptive)
