"""Fig. 10 — training under the real-world heterogeneous (Monaco) setting.

Paper: 30 signalized intersections with varying lane configurations and
phase sets, conflicting flows peaking at 975 veh/h; parameter sharing is
infeasible, so PairUpLight trains independent per-intersection networks
and is compared against MA2C and fixed-time control.  The figure shows
PairUpLight's waiting-time curve declining below both.

Scaled here to a 3x4-core synthetic heterogeneous network (same
generator as the full 30-intersection one, with street removals dialled
up so phase-set sizes genuinely vary) and 10 episodes.
"""

from __future__ import annotations

import numpy as np

from repro.agents.fixed_time import FixedTimeSystem
from repro.agents.ma2c import MA2CSystem
from repro.agents.pairuplight import PairUpLightConfig, PairUpLightSystem
from repro.env.tsc_env import EnvConfig, TrafficSignalEnv
from repro.rl.ppo import PPOConfig
from repro.rl.runner import run_episode, train
from repro.scenarios.monaco import MonacoScenario, MonacoSpec

from conftest import record_result

EPISODES = 10


def _make_env(scenario, seed):
    return TrafficSignalEnv(
        scenario.network,
        scenario.phase_plans,
        scenario.flows,
        EnvConfig(horizon_ticks=300, max_ticks=2400),
        seed=seed,
    )


def _run():
    scenario = MonacoScenario(
        MonacoSpec(rows=3, cols=4, removal_fraction=0.3, seed=13, t_peak=120.0)
    )
    env = _make_env(scenario, seed=0)
    fixed_wait, _, _ = run_episode(FixedTimeSystem(env), env, training=False, seed=0)

    pul_env = _make_env(scenario, seed=1)
    pairuplight = PairUpLightSystem(
        pul_env,
        PairUpLightConfig(
            parameter_sharing=False, ppo=PPOConfig(epochs=2, minibatch_agents=6)
        ),
        seed=0,
    )
    pul_history = train(pairuplight, pul_env, episodes=EPISODES, seed=0)

    ma2c_env = _make_env(scenario, seed=2)
    ma2c_history = train(MA2CSystem(ma2c_env, seed=0), ma2c_env, episodes=EPISODES, seed=0)
    return scenario, fixed_wait, pul_history, ma2c_history


def test_fig10_monaco_heterogeneous(once):
    scenario, fixed_wait, pul_history, ma2c_history = once(_run)

    phase_counts = sorted(p.num_phases for p in scenario.phase_plans.values())
    lines = [
        "Heterogeneous-network training (synthetic Monaco substitute)",
        f"intersections: {len(scenario.network.signalized_nodes())}, "
        f"phase-set sizes {phase_counts[0]}-{phase_counts[-1]}, "
        f"peak demand {scenario.spec.peak_rate:.0f} veh/h",
        f"Fixedtime reference wait: {fixed_wait:.1f} s",
        "",
        f"{'Model':<14} {'first ep':>9} {'best':>9} {'final':>9}",
    ]
    for name, history in (("PairUpLight", pul_history), ("MA2C", ma2c_history)):
        curve = history.wait_curve
        lines.append(
            f"{name:<14} {curve[0]:>9.1f} {curve.min():>9.1f} {curve[-1]:>9.1f}"
        )
    lines.append("")
    lines.append("Paper Fig. 10: PairUpLight declines below MA2C and Fixedtime "
                 "on the 30-intersection Monaco network.")
    record_result("fig10_monaco", "\n".join(lines))

    # Shape: PairUpLight improves during training despite heterogeneity...
    pul = pul_history.wait_curve
    assert pul.min() < pul[0]
    # ...and its best performance undercuts the fixed-time reference.
    assert pul.min() < fixed_wait
